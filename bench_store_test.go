package repro

import (
	"context"
	"os"
	"testing"

	"repro/internal/lang"
	"repro/internal/store"
	"repro/internal/testsuite"
)

// The write-behind workload: a fresh mutant every round, so every eval
// is a cache miss that executes the suite — the phase-1/phase-2 probe
// hot path. The loop body runs ~20k interpreter steps per eval, the
// same shape (smaller n) as BenchmarkRunnerDuplicateProbeThroughput.
func storeBenchSuite() *testsuite.Suite {
	return &testsuite.Suite{Positive: []testsuite.Test{{
		Name: "count", Input: []int64{20000}, Want: []int64{20001}, MaxSteps: 200000,
	}}}
}

// storeBenchSrc yields a distinct program per round (the i-i constant
// changes the text, not the behavior), so nothing is served from cache.
func storeBenchSrc(i int) string {
	return "input n\nset i = " + itoa(i) + " - " + itoa(i) +
		"\nlabel loop\nif i > n goto done\nset i = i + 1\ngoto loop\nlabel done\nprint i\n"
}

// benchProbeOff is the baseline: no store, every round pays one suite
// execution.
func benchProbeOff(b *testing.B) {
	r := testsuite.NewRunner(storeBenchSuite())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Eval(context.Background(), lang.MustParse(storeBenchSrc(i)))
	}
}

// benchProbeCold attaches an empty store, so every round additionally
// enqueues a write-behind record — the persistence overhead under test.
// The store is flushed and closed off the clock.
func benchProbeCold(b *testing.B) {
	st, err := store.Open(store.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatalf("opening store: %v", err)
	}
	r := testsuite.NewRunner(storeBenchSuite())
	r.AttachStore(st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Eval(context.Background(), lang.MustParse(storeBenchSrc(i)))
	}
	b.StopTimer()
	if err := st.Close(); err != nil {
		b.Fatalf("closing store: %v", err)
	}
}

// benchProbeWarm replays a workload whose verdicts a previous run
// already persisted: the runner warm-starts from the reopened store and
// every eval is a cache hit that never executes the suite — the payoff
// side of the trio.
func benchProbeWarm(b *testing.B) {
	const mutants = 256
	dir := b.TempDir()
	programs := make([]*lang.Program, mutants)
	for i := range programs {
		programs[i] = lang.MustParse(storeBenchSrc(i))
	}

	// A prior run records every verdict; reopen to warm-start from disk.
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		b.Fatalf("opening store: %v", err)
	}
	warmup := testsuite.NewRunner(storeBenchSuite())
	warmup.AttachStore(st)
	for _, p := range programs {
		warmup.Eval(context.Background(), p)
	}
	if err := st.Close(); err != nil {
		b.Fatalf("closing store after warmup: %v", err)
	}
	if st, err = store.Open(store.Options{Dir: dir}); err != nil {
		b.Fatalf("reopening store: %v", err)
	}

	r := testsuite.NewRunner(storeBenchSuite())
	r.AttachStore(st)
	if n := r.WarmStart(); n != mutants {
		b.Fatalf("warm-started %d entries, want %d", n, mutants)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Eval(context.Background(), programs[i%mutants])
	}
	b.StopTimer()
	if r.Evals() != 0 {
		b.Fatalf("warm run executed %d suite evaluations, want 0", r.Evals())
	}
	if err := st.Close(); err != nil {
		b.Fatalf("closing store: %v", err)
	}
}

// BenchmarkProbeWriteBehind is the cost/payoff trio of the persistent
// evaluation store on the probe hot path: off (no store), cold (empty
// store: every eval also enqueues a write-behind record), warm (store
// already holds every verdict: evals become cache hits). cold/off is
// the persistence overhead — TestProbeWriteBehindOverheadGate bounds it
// at 5% — and warm/off is the amortized win across runs.
func BenchmarkProbeWriteBehind(b *testing.B) {
	b.Run("off", benchProbeOff)
	b.Run("cold", benchProbeCold)
	b.Run("warm", benchProbeWarm)
}

// TestProbeWriteBehindOverheadGate asserts the ISSUE's performance bound:
// write-behind persistence may cost at most 5% on the probe hot path.
// Wall-clock benchmark comparisons are noisy on shared CI machines, so
// the gate is opt-in via STORE_BENCH=1 (the `make store` target sets it).
func TestProbeWriteBehindOverheadGate(t *testing.T) {
	if os.Getenv("STORE_BENCH") == "" {
		t.Skip("set STORE_BENCH=1 to run the write-behind overhead gate")
	}
	off := testing.Benchmark(benchProbeOff)
	cold := testing.Benchmark(benchProbeCold)
	ratio := float64(cold.NsPerOp()) / float64(off.NsPerOp())
	t.Logf("off %d ns/op, cold %d ns/op, overhead %.2f%%",
		off.NsPerOp(), cold.NsPerOp(), 100*(ratio-1))
	if ratio > 1.05 {
		t.Errorf("write-behind overhead %.2f%% exceeds the 5%% budget (off %d ns/op, cold %d ns/op)",
			100*(ratio-1), off.NsPerOp(), cold.NsPerOp())
	}
}
