// Package repro is a from-scratch Go reproduction of "Multiplicative
// Weights Algorithms for Parallel Automated Software Repair" (Renzullo,
// Weimer, Forrest — IPDPS 2021).
//
// The library lives under internal/: the three parallel MWU realizations
// (internal/mwu), the MWRepair two-phase APR algorithm (internal/core),
// every substrate they need (TinyLang interpreter, test suites, mutation
// operators, safe-mutation pools, scenario generator, baselines), and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation (internal/experiments).
//
// Entry points:
//
//	cmd/experiments  — regenerate Tables I–IV, Figures 4a/4b, the cost
//	                   model demo and the Sec. IV-G APR comparison
//	cmd/mwrepair     — run the full MWRepair pipeline on one scenario
//	cmd/bandit       — trace one MWU learner on one dataset
//	examples/        — runnable API walkthroughs
//
// The benchmarks in bench_test.go regenerate each experiment at reduced
// replication counts; see EXPERIMENTS.md for paper-vs-measured results.
package repro
