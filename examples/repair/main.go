// Repair: the paper's headline application, end to end on a generated
// gzip-like defect scenario.
//
// Phase 1 precomputes a pool of individually safe mutations (parallel,
// one-time, reusable across bugs in the same program). Phase 2 runs the
// online MWU search over "how many pool mutations to compose per probe"
// and stops at the first composition that passes the full test suite.
//
//	go run ./examples/repair
package main

import (
	"context"

	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/testsuite"
)

func main() {
	prof := scenario.MustByName("libtiff-2005-12-14")
	fmt.Printf("generating scenario %s...\n", prof.Name)
	sc := scenario.Generate(prof)
	fmt.Printf("  defective program: %d statements\n", sc.Program.Len())
	fmt.Printf("  test suite: %d regression tests + %d bug-inducing test\n",
		len(sc.Suite.Positive), len(sc.Suite.Negative))

	seed := rng.New(7)

	// Phase 1: precompute the safe-mutation pool.
	t0 := time.Now()
	pl := sc.BuildPool(8, seed.Split())
	st := pl.Stats()
	fmt.Printf("phase 1: %d safe mutations in %v (%.0f%% of candidates were safe — the paper reports ≈30%% for C/Java)\n",
		pl.Size(), time.Since(t0).Round(time.Millisecond), 100*st.SafeRate())

	// Phase 2: online MWU-guided composition search.
	t0 = time.Now()
	res, err := core.RepairWithAlgorithm(context.Background(), "standard", pl, sc.Suite, seed.Split(), core.Config{
		MaxIter: 2000,
		Workers: 8,
		MaxX:    prof.Options,
	})
	if err != nil {
		panic(err)
	}
	if !res.Repaired {
		fmt.Printf("no repair found in %d iterations\n", res.Iterations)
		return
	}
	fmt.Printf("phase 2: repaired in %d update cycles (%v), composing %d mutations per probe near the end\n",
		res.Iterations, time.Since(t0).Round(time.Millisecond), res.LearnedArm)
	fmt.Printf("  cost: %d probes, %d distinct test-suite runs (%d cache hits, %d dedup-suppressed)\n",
		res.Probes, res.FitnessEvals, res.CacheHits, res.DedupSuppressed)
	fmt.Println("  patch:")
	for _, m := range res.Patch {
		fmt.Printf("    %s\n", m.ID())
	}

	// Double-check the patch against a fresh runner.
	if f := testsuite.NewRunner(sc.Suite).Eval(context.Background(), res.Program); !f.Repair() {
		panic("patch verification failed")
	}
	fmt.Println("  patch independently verified: all tests pass")
}
