// Quickstart: define a bandit problem, run one MWU learner, read out the
// learned best option.
//
// The scenario: ten job-scheduling heuristics with unknown success rates;
// each trial is expensive, so we let Standard MWU allocate trials and
// learn which heuristic works.
//
//	go run ./examples/quickstart
package main

import (
	"context"

	"fmt"

	"repro/internal/bandit"
	"repro/internal/dist"
	"repro/internal/mwu"
	"repro/internal/rng"
)

func main() {
	// True (hidden) success rates of the ten options. The learner sees
	// only Bernoulli outcomes of individual trials.
	truth := []float64{0.31, 0.45, 0.12, 0.78, 0.50, 0.93, 0.22, 0.61, 0.40, 0.55}
	problem := bandit.NewProblem(dist.New("heuristics", truth))

	seed := rng.New(42)
	learner := mwu.NewStandard(mwu.StandardConfig{
		K:      len(truth),
		Agents: 8,    // eight trials evaluated in parallel per iteration
		Eta:    0.05, // learning rate
	}, seed.Split())

	res := mwu.Run(context.Background(), learner, problem, seed.Split(), mwu.RunConfig{MaxIter: 5000})

	fmt.Printf("converged: %v after %d update cycles\n", res.Converged, res.Iterations)
	fmt.Printf("learned option %d (true success rate %.2f; best possible %.2f)\n",
		res.Choice, truth[res.Choice], truth[problem.Best()])
	fmt.Printf("trials spent: %d (accuracy %.1f%%)\n",
		problem.TotalPulls(), problem.Accuracy(res.Choice))
}
