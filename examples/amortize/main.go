// Amortize: the pool lifecycle across a program's maintenance history
// (Sec. III-C of the paper).
//
// The precompute phase is a one-time cost amortized over many bugs: the
// pool is built when the software ships, reused for each new defect, and
// updated incrementally when the regression suite grows — when a repaired
// bug's failing test joins the suite, the pool is rerun on the new tests
// rather than rebuilt from scratch.
//
//	go run ./examples/amortize
package main

import (
	"context"

	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/testsuite"
)

func main() {
	prof := scenario.MustByName("libtiff-2005-12-14")
	sc := scenario.Generate(prof)
	seed := rng.New(11)

	// Ship time: build the pool once.
	t0 := time.Now()
	pl := sc.BuildPool(8, seed.Split())
	buildCost := time.Since(t0)
	fmt.Printf("ship time: precomputed %d safe mutations in %v\n", pl.Size(), buildCost.Round(time.Millisecond))

	// Bug arrives: run the online phase against the existing pool.
	t0 = time.Now()
	res, err := core.RepairWithAlgorithm(context.Background(), "standard", pl, sc.Suite, seed.Split(), core.Config{
		MaxIter: 2000, Workers: 8, MaxX: prof.Options,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bug #1: repaired=%v in %d cycles / %v (no pool rebuild needed)\n",
		res.Repaired, res.Iterations, time.Since(t0).Round(time.Millisecond))

	// The program evolves: new regression tests are added over time,
	// locking in currently-observed behaviour on fresh inputs.
	grown := &testsuite.Suite{Positive: append([]testsuite.Test{}, sc.Suite.Positive...)}
	for i := 0; i < 4; i++ {
		// New in-distribution inputs; expected outputs are the program's
		// current behaviour (exactly how regression tests accrete).
		base := sc.Suite.Positive[i%len(sc.Suite.Positive)]
		input := []int64{(base.Input[0] + int64(i) + 1) % 999, (base.Input[1] + 37) % 999}
		res := lang.Run(sc.Program, lang.Options{Input: input})
		if res.Err != nil {
			panic(res.Err)
		}
		grown.Positive = append(grown.Positive, testsuite.Test{
			Name: fmt.Sprintf("new%d", i), Input: input, Want: res.Output, MaxSteps: 50000,
		})
	}
	fmt.Printf("suite grows: %d -> %d regression tests\n", len(sc.Suite.Positive), len(grown.Positive))

	// Incremental update: rerun the existing pool against the grown suite
	// instead of rebuilding it. Mutations whose damage the old suite
	// missed drop out; the rest of the investment carries forward.
	t0 = time.Now()
	before := pl.Size()
	removed := pl.Revalidate(grown, 8)
	fmt.Printf("incremental revalidation: %v, %d mutations dropped, %d retained (full rebuild would cost ~%v)\n",
		time.Since(t0).Round(time.Millisecond), removed, pl.Size(), buildCost.Round(time.Millisecond))
	fmt.Printf("pool retention: %.0f%%\n", 100*float64(pl.Size())/float64(before))

	// And the retained pool still contains what the NEXT bug needs: the
	// online phase runs immediately, no precompute in the loop.
	res2, err := core.RepairWithAlgorithm(context.Background(), "standard", pl, sc.Suite, seed.Split(), core.Config{
		MaxIter: 2000, Workers: 8, MaxX: prof.Options,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bug #2 (same defect class, fresh search): repaired=%v in %d cycles using the retained pool\n",
		res2.Repaired, res2.Iterations)
}
