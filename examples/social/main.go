// Social: the Distributed variant in its native domain — social learning.
//
// A population of 500 agents must collectively discover the best of 40
// restaurants. No agent keeps statistics (memoryless, O(1) state): each
// evening an agent either tries a random restaurant (probability μ) or
// asks a random neighbor where they currently go, eats there, and adopts
// it with probability β if the meal was good. The distribution over
// restaurants lives only in the population's choices, and the run uses the
// true message-passing engine — one goroutine per agent, coordination
// purely over channels.
//
//	go run ./examples/social
package main

import (
	"context"

	"fmt"
	"sort"

	"repro/internal/bandit"
	"repro/internal/dist"
	"repro/internal/mwu"
	"repro/internal/rng"
)

func main() {
	const restaurants, agents = 40, 500
	seed := rng.New(2024)

	quality := make([]float64, restaurants)
	for i := range quality {
		quality[i] = 0.2 + 0.6*seed.Float64()
	}
	best := 0
	for i, q := range quality {
		if q > quality[best] {
			best = i
		}
	}
	quality[best] = 0.95 // one clearly great spot

	problem := bandit.NewProblem(dist.New("restaurants", quality))
	cfg := mwu.DistributedConfig{
		K:       restaurants,
		PopSize: agents,
		Mu:      0.05,
		Beta:    0.8,
		Alpha:   0.01,
	}

	res, err := mwu.RunMessagePassing(context.Background(), cfg, problem, seed.Split(), 500)
	if err != nil {
		panic(err)
	}

	fmt.Printf("population of %d agents, %d restaurants, message-passing engine\n", agents, restaurants)
	fmt.Printf("converged: %v after %d evenings\n", res.Converged, res.Iterations)
	fmt.Printf("plurality restaurant: #%d with %.0f%% of the population (true quality %.2f; best is #%d at %.2f)\n",
		res.Choice, 100*res.LeaderProb, quality[res.Choice], best, quality[best])
	fmt.Printf("communication: %d messages total, worst per-evening congestion %d (population %d)\n",
		res.Metrics.MessagesSent, res.Metrics.MaxCongestion, agents)
	fmt.Printf("per-agent memory: %d word (the weight vector exists only as popularity)\n",
		res.Metrics.MemoryFloats)

	// Show the most popular restaurants by final meal count.
	pulls := make([]int, restaurants)
	for i := range pulls {
		pulls[i] = int(problem.Pulls(i))
	}
	order := make([]int, restaurants)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pulls[order[a]] > pulls[order[b]] })
	fmt.Print("most-visited restaurants: ")
	for _, r := range order[:5] {
		fmt.Printf("#%d(q=%.2f, %d visits) ", r, quality[r], pulls[r])
	}
	fmt.Println()
}
