// Adslate: the Slate variant in its native domain — choosing a fixed-size
// slate of advertisements for a page when only the displayed ads produce
// feedback (clicks).
//
// There are 200 candidate ads with unknown click-through rates and 8 ad
// slots per page view. Enumerating C(200,8) ≈ 5.5×10¹² slates is hopeless;
// the Slate learner caps the weight vector onto the slate polytope and
// samples slates whose per-ad inclusion probability follows the weights
// exactly, updating only the displayed ads with importance-weighted
// estimates.
//
//	go run ./examples/adslate
package main

import (
	"context"

	"fmt"
	"sort"

	"repro/internal/bandit"
	"repro/internal/mwu"
	"repro/internal/rng"

	"repro/internal/dist"
)

func main() {
	const k, slots = 200, 8
	seed := rng.New(99)

	// Hidden click-through rates: a few great ads, a long mediocre tail.
	ctr := make([]float64, k)
	for i := range ctr {
		ctr[i] = 0.02 + 0.1*seed.Float64()
	}
	for _, hot := range []int{17, 42, 133} {
		ctr[hot] = 0.5 + 0.3*seed.Float64()
	}
	problem := bandit.NewProblem(dist.New("ads", ctr))

	learner := mwu.NewSlate(mwu.SlateConfig{K: k, N: slots, Gamma: 0.05, Eta: 0.02}, seed.Split())
	res := mwu.Run(context.Background(), learner, problem, seed.Split(), mwu.RunConfig{MaxIter: 10000})

	fmt.Printf("after %d page views (converged: %v):\n", res.Iterations, res.Converged)
	fmt.Printf("  top learned ad: #%d (true CTR %.3f; best possible %.3f)\n",
		res.Choice, ctr[res.Choice], ctr[problem.Best()])

	// Rank all ads by learned weight and show the learned slate.
	weights := learner.Weights()
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	fmt.Printf("  learned top-%d slate:", slots)
	for _, ad := range order[:slots] {
		fmt.Printf(" #%d(%.2f)", ad, ctr[ad])
	}
	fmt.Println()
	fmt.Printf("  clicks observed: %.0f over %d impressions\n",
		sumRewards(problem), problem.TotalPulls())
}

// sumRewards estimates total clicks from per-arm accounting.
func sumRewards(p *bandit.Problem) float64 {
	// Pull counts × true rates give the expected click total; the example
	// keeps the oracle simple rather than recording every outcome.
	total := 0.0
	d := p.Distribution()
	for i := 0; i < p.Arms(); i++ {
		total += float64(p.Pulls(i)) * d.Value(i)
	}
	return total
}
