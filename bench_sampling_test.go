package repro

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/mwu"
	"repro/internal/rng"
	"repro/internal/wrs"
)

// sampleAgents mirrors the experiment harness's Standard agent scaling:
// n = ⌈0.05·k⌉ with a floor of 16 — the batch of draws every update cycle
// must serve at dataset size k.
func sampleAgents(k int) int {
	n := (k*5 + 99) / 100
	if n < 16 {
		n = 16
	}
	return n
}

// sampleWeights builds an MWU-mid-run-shaped weight vector: most options
// decayed, a few amplified.
func sampleWeights(k int, seed uint64) []float64 {
	r := rng.New(seed)
	w := make([]float64, k)
	for i := range w {
		w[i] = math.Exp(4 * (r.Float64() - 0.7))
	}
	return w
}

var sampleKs = []int{64, 1024, 16384}

// BenchmarkSample is the PR's headline comparison: the per-iteration cost
// of assigning options to all n agents at dataset size k, for the naive
// per-agent linear scan (the previous Standard.Sample), Fenwick prefix
// descent, and the batched merge pass. The production learner picks
// between the latter two by shape; both must beat the naive scan by ≥10×
// at k=16384 (see TestSampleSpeedupOverNaive).
func BenchmarkSample(b *testing.B) {
	for _, k := range sampleKs {
		w := sampleWeights(k, uint64(k))
		n := sampleAgents(k)
		out := make([]int, n)

		b.Run(fmt.Sprintf("naive/k=%d", k), func(b *testing.B) {
			r := rng.New(9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = r.Categorical(w)
				}
			}
		})
		b.Run(fmt.Sprintf("fenwick/k=%d", k), func(b *testing.B) {
			f := wrs.NewFenwick(w)
			r := rng.New(9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = f.Draw(r)
				}
			}
		})
		b.Run(fmt.Sprintf("batched/k=%d", k), func(b *testing.B) {
			var bt wrs.Batcher
			r := rng.New(9)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Draw(w, r, out)
			}
		})
	}
}

// BenchmarkSampleUpdateCycle measures the full production loop — Sample
// plus Update through the Standard learner — so the wrs wiring (incremental
// Fenwick maintenance, owned result slices) is benchmarked end to end, not
// just the draw primitive.
func BenchmarkSampleUpdateCycle(b *testing.B) {
	for _, k := range sampleKs {
		b.Run(fmt.Sprintf("standard/k=%d", k), func(b *testing.B) {
			s := mwu.NewStandard(mwu.StandardConfig{K: k, Agents: sampleAgents(k)}, rng.New(uint64(k)))
			rewards := make([]float64, sampleAgents(k))
			for j := range rewards {
				rewards[j] = float64(j % 2)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arms := s.Sample()
				s.Update(arms, rewards)
			}
		})
		b.Run(fmt.Sprintf("slate/k=%d", k), func(b *testing.B) {
			s := mwu.NewSlate(mwu.SlateConfig{K: k}, rng.New(uint64(k)))
			rewards := make([]float64, s.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arms := s.Sample()
				s.Update(arms, rewards)
			}
		})
	}
}

// TestSampleSpeedupOverNaive is the acceptance check behind
// BenchmarkSample: at k=16384 the production draw paths must beat the
// naive per-agent scan by at least 10×, and both must reproduce the
// naive sampler's distribution (chi-squared on the same weight vector).
// The true gap is two to three orders of magnitude, so the 10× assertion
// holds with huge margin even on noisy CI machines.
func TestSampleSpeedupOverNaive(t *testing.T) {
	const k = 16384
	w := sampleWeights(k, k)
	n := sampleAgents(k)
	out := make([]int, n)
	const rounds = 40

	naive := rng.New(17)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		for j := range out {
			out[j] = naive.Categorical(w)
		}
	}
	naiveDur := time.Since(start)

	f := wrs.NewFenwick(w)
	fr := rng.New(17)
	start = time.Now()
	for i := 0; i < rounds; i++ {
		for j := range out {
			out[j] = f.Draw(fr)
		}
	}
	fenDur := time.Since(start)

	var bt wrs.Batcher
	br := rng.New(17)
	start = time.Now()
	for i := 0; i < rounds; i++ {
		bt.Draw(w, br, out)
	}
	batchDur := time.Since(start)

	if ratio := float64(naiveDur) / float64(fenDur); ratio < 10 {
		t.Errorf("fenwick speedup %.1fx < 10x (naive %v, fenwick %v)", ratio, naiveDur, fenDur)
	}
	if ratio := float64(naiveDur) / float64(batchDur); ratio < 10 {
		t.Errorf("batched speedup %.1fx < 10x (naive %v, batched %v)", ratio, naiveDur, batchDur)
	}

	// Distribution match: chi-squared of each fast path's draw counts
	// against the weight proportions, on a coarsened 64-bucket projection
	// so expected counts are large enough for the χ² approximation.
	total := 0.0
	for _, wi := range w {
		total += wi
	}
	const draws = 400000
	const buckets = 64
	groupWeight := make([]float64, buckets)
	for i, wi := range w {
		groupWeight[i*buckets/k] += wi
	}
	check := func(name string, drawBatch func(r *rng.RNG, out []int)) {
		counts := make([]float64, buckets)
		r := rng.New(23)
		batch := make([]int, 1000)
		for d := 0; d < draws; d += len(batch) {
			drawBatch(r, batch)
			for _, v := range batch {
				counts[v*buckets/k]++
			}
		}
		chi2 := 0.0
		for g := 0; g < buckets; g++ {
			exp := draws * groupWeight[g] / total
			d := counts[g] - exp
			chi2 += d * d / exp
		}
		// 99.9th percentile of χ²(63) ≈ 63 + 4.9·√63 + 10.
		if limit := float64(buckets-1) + 4.9*math.Sqrt(float64(buckets-1)) + 10; chi2 > limit {
			t.Errorf("%s: chi-squared %.1f exceeds %.1f — distribution mismatch", name, chi2, limit)
		}
	}
	check("fenwick", func(r *rng.RNG, out []int) {
		for j := range out {
			out[j] = f.Draw(r)
		}
	})
	check("batched", func(r *rng.RNG, out []int) {
		bt.Draw(w, r, out)
	})
}
