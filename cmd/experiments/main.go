// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -tables               # Tables II, III, IV
//	experiments -table1               # Table I empirical verification
//	experiments -figures              # Figures 4a and 4b
//	experiments -costmodel            # Sec. IV-E/F cost model demo
//	experiments -apr                  # Sec. IV-G APR comparison
//	experiments -resilience           # E11: fault injection & degradation
//	experiments -families             # E12: multi-hunk, drifting, adversarial families
//	experiments -all                  # everything
//
// Common options:
//
//	-seeds N        replications per cell (paper: 100; default 10)
//	-maxiter N      update-cycle limit (default 10000)
//	-datasets a,b   comma-separated dataset subset
//	-algorithms a,b comma-separated algorithm subset
//	-scenario name  scenario for -figures (default gzip-2009-09-26)
//	-trials N       Monte-Carlo trials per figure point (default 300)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// writeFile creates path and applies write, exiting on failure.
func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func main() {
	var (
		tables    = flag.Bool("tables", false, "regenerate Tables II-IV")
		table1    = flag.Bool("table1", false, "empirically verify Table I")
		figures   = flag.Bool("figures", false, "regenerate Figures 4a/4b")
		costmodel = flag.Bool("costmodel", false, "run the Sec. IV-E/F cost model demo")
		apr       = flag.Bool("apr", false, "run the Sec. IV-G APR comparison")
		all       = flag.Bool("all", false, "run everything")

		seeds      = flag.Int("seeds", 10, "replications per cell (paper: 100)")
		maxIter    = flag.Int("maxiter", 10000, "update-cycle limit")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset (default: all 20)")
		algorithms = flag.String("algorithms", "", "comma-separated algorithm subset (default: every registered learner)")
		scenarioFl = flag.String("scenario", "gzip-2009-09-26", "scenario for -figures")
		trials     = flag.Int("trials", 300, "Monte-Carlo trials per figure point")
		k          = flag.Int("k", 1000, "option count for -costmodel")
		csvOut     = flag.String("csv", "", "also write -tables cells (or -figures data) as CSV to this file")
		jsonOut    = flag.String("json", "", "also write -tables cells as JSON to this file")
		sweep      = flag.String("sweep", "", "parameter sensitivity sweep: eta | gamma | mu | beta (Sec. VI)")
		corpus     = flag.Int("corpus", 0, "run MWRepair on N randomly generated scenarios (Sec. VI corpus study)")
		resilience = flag.Bool("resilience", false, "run E11: convergence under injected faults (raw vs managed policies)")
		faultRates = flag.String("faultrates", "", "comma-separated fault rates for -resilience (default 0,0.02,0.05,0.1,0.2)")
		families   = flag.Bool("families", false, "run E12: multi-hunk, drifting, and adversarial scenario families")
		profiles   = flag.String("profiles", "", "comma-separated scenario profiles for -families (default mh-pair,drift-grow,adv-mild)")
	)
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	cliutil.Positive("experiments", "seeds", *seeds)
	cliutil.Positive("experiments", "maxiter", *maxIter)
	cliutil.Positive("experiments", "trials", *trials)
	obsFlags.Validate("experiments")

	if !(*tables || *table1 || *figures || *costmodel || *apr || *all || *sweep != "" || *corpus > 0 || *resilience || *families) {
		flag.Usage()
		os.Exit(2)
	}

	// -trace covers the E11 resilience cells (the one experiment that runs
	// its replications sequentially, so the combined stream stays
	// deterministic); -debug-addr covers any long run.
	tracer, _, obsCleanup := obsFlags.Setup("experiments", obs.RunID(0xE5, "experiments"))
	defer obsCleanup()

	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Split(s, ",")
	}

	if *all || *table1 {
		rows := experiments.VerifyTableOne([]int{64, 256, 1024, 4096, 16384}, *maxIter, 0x7AB1E1)
		fmt.Println(experiments.RenderTableOne(rows))
	}
	if *all || *tables {
		spec := experiments.Spec{
			Algorithms: split(*algorithms),
			Datasets:   split(*datasets),
			Seeds:      *seeds,
			MaxIter:    *maxIter,
		}
		cells, err := experiments.Run(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderAllTables(cells, *maxIter))
		fmt.Println(experiments.RenderCalibration(experiments.CalibrateCostModel(cells)))
		if *csvOut != "" {
			writeFile(*csvOut, func(f *os.File) error { return experiments.WriteCSV(f, cells, *maxIter) })
		}
		if *jsonOut != "" {
			writeFile(*jsonOut, func(f *os.File) error { return experiments.WriteJSON(f, cells) })
		}
	}
	if *all || *figures {
		data := experiments.RunFigures(experiments.FigureSpec{
			Scenario: *scenarioFl,
			Trials:   *trials,
		})
		fmt.Println(experiments.RenderFigure4a(data))
		fmt.Println(experiments.RenderFigure4b(data))
		if *csvOut != "" && !*tables && !*all {
			writeFile(*csvOut, func(f *os.File) error { return experiments.WriteFigureCSV(f, data) })
		}
	}
	if *all || *costmodel {
		fmt.Println(experiments.RenderCostModel(*k))
	}
	if *all || *apr {
		sum, err := experiments.RunAPR(experiments.APRSpec{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderAPR(sum))
		if *jsonOut != "" && !*tables && !*all {
			writeFile(*jsonOut, func(f *os.File) error { return experiments.WriteAPRJSON(f, sum) })
		}
	}
	if *sweep != "" {
		spec := experiments.SweepSpec{Param: experiments.SweepParam(*sweep), Seeds: *seeds}
		if *datasets != "" {
			spec.Dataset = strings.Split(*datasets, ",")[0]
		}
		points, err := experiments.RunSweep(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderSweep(spec, points))
	}
	if *corpus > 0 {
		res, err := experiments.RunCorpus(experiments.CorpusSpec{N: *corpus})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderCorpus(res))
	}
	if *all || *resilience {
		spec := experiments.ResilienceSpec{
			Seeds:   *seeds,
			MaxIter: *maxIter,
			Trace:   tracer,
		}
		if *datasets != "" {
			spec.Dataset = strings.Split(*datasets, ",")[0]
		}
		if *faultRates != "" {
			for _, tok := range strings.Split(*faultRates, ",") {
				r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
				if err != nil || !(r >= 0 && r <= 1) {
					fmt.Fprintln(os.Stderr, "experiments: -faultrates values must be in [0,1], got", tok)
					os.Exit(2)
				}
				spec.FaultRates = append(spec.FaultRates, r)
			}
		}
		cells, err := experiments.RunResilience(spec)
		if err != nil {
			// The message-passing engine is the one runner that can fail
			// (intractable population); surface it instead of printing a
			// half-empty table.
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderResilience(spec, cells))
		if *jsonOut != "" && !*tables && !*all {
			writeFile(*jsonOut, func(f *os.File) error { return experiments.WriteResilienceJSON(f, cells) })
		}
	}
	if *all || *families {
		spec := experiments.FamiliesSpec{
			Profiles:   split(*profiles),
			Algorithms: split(*algorithms),
			Seeds:      *seeds,
			MaxIter:    *maxIter,
		}
		cells, err := experiments.RunFamilies(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.RenderFamilies(spec, cells))
		if *jsonOut != "" && !*tables && !*all {
			writeFile(*jsonOut, func(f *os.File) error { return experiments.WriteFamiliesJSON(f, cells) })
		}
	}
}
