// Command poolctl manages precomputed safe-mutation pools — the phase-1
// artifact of MWRepair (Sec. III-C of the paper). Pools are built once per
// program, amortized across bugs, and updated incrementally when the
// regression suite grows.
//
// Usage:
//
//	poolctl -build -scenario units -out units.pool [-target 1100] [-workers 8]
//	poolctl -inspect -in units.pool
//	poolctl -revalidate -scenario units -in units.pool -out units2.pool
//
// -revalidate reruns every pool mutation against the scenario's current
// suite and drops newly unsafe entries — the paper's incremental-update
// path for when a repaired bug's failing test joins the suite.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/mutation"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func main() {
	var (
		build      = flag.Bool("build", false, "precompute a pool for -scenario")
		inspect    = flag.Bool("inspect", false, "print a pool summary")
		revalidate = flag.Bool("revalidate", false, "re-check a pool against the scenario's suite")

		scenarioFl = flag.String("scenario", "", "registry scenario name")
		in         = flag.String("in", "", "input pool file")
		out        = flag.String("out", "", "output pool file")
		target     = flag.Int("target", 0, "pool size target (default: scenario profile)")
		workers    = flag.Int("workers", 8, "parallel evaluation workers")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	cliutil.Positive("poolctl", "workers", *workers)
	cliutil.NonNegative("poolctl", "target", *target)
	obsFlags.Validate("poolctl")

	tracer, reg, obsCleanup := obsFlags.Setup("poolctl", obs.RunID(*seed, "poolctl", *scenarioFl))
	defer obsCleanup()

	// SIGINT/SIGTERM stops a long pool build at a batch boundary and still
	// flushes the trace via the deferred cleanup.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	switch {
	case *build:
		prof, err := scenario.ByName(*scenarioFl)
		fatalIf(err)
		if *target > 0 {
			prof.PoolTarget = *target
		}
		sc := scenario.Generate(prof)
		t0 := time.Now()
		pl := sc.BuildPoolContext(ctx, *workers, rng.New(*seed), tracer)
		st := pl.Stats()
		st.Export(reg, "pool")
		fmt.Printf("built pool for %s: %d safe mutations in %v (%d candidates, %.0f%% safe, %d cache hits, %d dedup-suppressed)\n",
			prof.Name, pl.Size(), time.Since(t0).Round(time.Millisecond), st.Evaluated, 100*st.SafeRate(),
			st.CacheHits, st.DedupSuppressed)
		save(pl, *out)

	case *inspect:
		pl := load(*in)
		st := pl.Stats()
		fmt.Printf("pool: %d safe mutations (program: %d statements)\n", pl.Size(), pl.Original().Len())
		fmt.Printf("build stats: %d attempts, %d evaluated, %d duplicates skipped, safe rate %.0f%%\n",
			st.Attempts, st.Evaluated, st.Duplicates, 100*st.SafeRate())
		fmt.Printf("cache stats: %d hits, %d dedup-suppressed\n", st.CacheHits, st.DedupSuppressed)
		byOp := map[mutation.Op]int{}
		for _, m := range pl.Mutations() {
			byOp[m.Op]++
		}
		for _, op := range mutation.Ops {
			fmt.Printf("  %-8s %d\n", op, byOp[op])
		}

	case *revalidate:
		prof, err := scenario.ByName(*scenarioFl)
		fatalIf(err)
		sc := scenario.Generate(prof)
		pl := load(*in)
		t0 := time.Now()
		removed := pl.Revalidate(sc.Suite, *workers)
		fmt.Printf("revalidated %s pool in %v: %d mutations dropped, %d remain\n",
			prof.Name, time.Since(t0).Round(time.Millisecond), removed, pl.Size())
		if *out != "" {
			save(pl, *out)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func save(pl *pool.Pool, path string) {
	if path == "" {
		fatalIf(fmt.Errorf("missing -out"))
	}
	f, err := os.Create(path)
	fatalIf(err)
	defer f.Close()
	fatalIf(pl.Save(f))
	fmt.Printf("wrote %s\n", path)
}

func load(path string) *pool.Pool {
	if path == "" {
		fatalIf(fmt.Errorf("missing -in"))
	}
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	pl, err := pool.Load(f)
	fatalIf(err)
	return pl
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "poolctl:", err)
		os.Exit(1)
	}
}
