// Command poolctl manages precomputed safe-mutation pools — the phase-1
// artifact of MWRepair (Sec. III-C of the paper). Pools are built once per
// program, amortized across bugs, and updated incrementally when the
// regression suite grows.
//
// Usage:
//
//	poolctl -build -scenario units -out units.pool [-target 1100] [-workers 8]
//	poolctl -build -scenario units -store data/            # persist into the store
//	poolctl -inspect -in units.pool
//	poolctl -inspect -scenario units -store data/          # read back from the store
//	poolctl -revalidate -scenario units -in units.pool -out units2.pool
//	poolctl -fsck -store data/
//	poolctl -compact -store data/
//	poolctl -store-stats -store data/
//
// -revalidate reruns every pool mutation against the scenario's current
// suite and drops newly unsafe entries — the paper's incremental-update
// path for when a repaired bug's failing test joins the suite.
//
// With -store, -build records the pool (and every suite verdict it paid
// for) in the persistent evaluation store instead of requiring an ad-hoc
// -out file, and -inspect reads it back. -fsck audits every pack file's
// checksums, truncating a torn tail and quarantining corrupt packs (exit
// 1 when a pack had to be quarantined — records were lost). -compact
// rewrites the live records into a single pack, dropping superseded
// duplicates. -store-stats prints the store's stats as JSON.
//
// Exactly one action flag must be given; none or several is a usage
// error (exit 2, like any flag-validation failure). Runtime failures —
// I/O errors, unknown scenarios, corrupt pool files — exit 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/mutation"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	var (
		build      = flag.Bool("build", false, "precompute a pool for -scenario")
		inspect    = flag.Bool("inspect", false, "print a pool summary")
		revalidate = flag.Bool("revalidate", false, "re-check a pool against the scenario's suite")
		fsck       = flag.Bool("fsck", false, "audit the store's pack checksums; quarantine corrupt packs")
		compact    = flag.Bool("compact", false, "rewrite the store's live records into a single pack")
		storeStats = flag.Bool("store-stats", false, "print the store's stats as JSON")

		scenarioFl = flag.String("scenario", "", "registry scenario name")
		in         = flag.String("in", "", "input pool file")
		out        = flag.String("out", "", "output pool file")
		storeDir   = flag.String("store", "", "persistent evaluation-store data directory")
		target     = flag.Int("target", 0, "pool size target (default: scenario profile)")
		workers    = flag.Int("workers", 8, "parallel evaluation workers")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	cliutil.Positive("poolctl", "workers", *workers)
	cliutil.NonNegative("poolctl", "target", *target)
	obsFlags.Validate("poolctl")

	// Exactly one action. Zero or several is a flag-usage mistake, so it
	// takes the same exit-2 path as any other validation failure.
	actions := 0
	for _, a := range []bool{*build, *inspect, *revalidate, *fsck, *compact, *storeStats} {
		if a {
			actions++
		}
	}
	switch {
	case actions == 0:
		cliutil.Fatalf("poolctl", "no action: pass one of -build, -inspect, -revalidate, -fsck, -compact, -store-stats")
	case actions > 1:
		cliutil.Fatalf("poolctl", "conflicting actions: pass exactly one of -build, -inspect, -revalidate, -fsck, -compact, -store-stats")
	}
	if (*fsck || *compact || *storeStats) && *storeDir == "" {
		cliutil.Fatalf("poolctl", "-fsck, -compact and -store-stats require -store")
	}
	if *build && *out == "" && *storeDir == "" {
		cliutil.Fatalf("poolctl", "-build requires -out or -store (or both)")
	}
	if *inspect && *in == "" && *storeDir == "" {
		cliutil.Fatalf("poolctl", "-inspect requires -in, or -store with -scenario")
	}
	if *inspect && *in == "" && *scenarioFl == "" {
		cliutil.Fatalf("poolctl", "-inspect from -store needs -scenario to identify the pool")
	}

	tracer, reg, obsCleanup := obsFlags.Setup("poolctl", obs.RunID(*seed, "poolctl", *scenarioFl))
	defer obsCleanup()

	// SIGINT/SIGTERM stops a long pool build at a batch boundary and still
	// flushes the trace via the deferred cleanup.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir})
		fatalIf(err)
		defer func() { fatalIf(st.Close()) }()
	}

	switch {
	case *build:
		prof, err := scenario.ByName(*scenarioFl)
		fatalIf(err)
		if *target > 0 {
			prof.PoolTarget = *target
		}
		sc := scenario.Generate(prof)
		t0 := time.Now()
		pl := sc.BuildPoolStored(ctx, *workers, rng.New(*seed), tracer, st)
		ps := pl.Stats()
		ps.Export(reg, "pool")
		fmt.Printf("built pool for %s: %d safe mutations in %v (%d candidates, %.0f%% safe, %d cache hits, %d dedup-suppressed)\n",
			prof.Name, pl.Size(), time.Since(t0).Round(time.Millisecond), ps.Evaluated, 100*ps.SafeRate(),
			ps.CacheHits, ps.DedupSuppressed)
		if st != nil {
			fmt.Printf("persisted pool to store %s (%d verdicts reused from earlier runs)\n", *storeDir, ps.StoreHits)
		}
		if *out != "" {
			save(pl, *out)
		}

	case *inspect:
		var pl *pool.Pool
		if *in != "" {
			pl = load(*in)
		} else {
			prof, err := scenario.ByName(*scenarioFl)
			fatalIf(err)
			sc := scenario.Generate(prof)
			pl, err = pool.FromStore(st, sc.Program, sc.Suite)
			fatalIf(err)
			if pl == nil {
				fatalIf(fmt.Errorf("store %s has no pool records for scenario %s", *storeDir, prof.Name))
			}
		}
		ps := pl.Stats()
		fmt.Printf("pool: %d safe mutations (program: %d statements)\n", pl.Size(), pl.Original().Len())
		fmt.Printf("build stats: %d attempts, %d evaluated, %d duplicates skipped, safe rate %.0f%%\n",
			ps.Attempts, ps.Evaluated, ps.Duplicates, 100*ps.SafeRate())
		fmt.Printf("cache stats: %d hits, %d dedup-suppressed\n", ps.CacheHits, ps.DedupSuppressed)
		byOp := map[mutation.Op]int{}
		for _, m := range pl.Mutations() {
			byOp[m.Op]++
		}
		for _, op := range mutation.Ops {
			fmt.Printf("  %-8s %d\n", op, byOp[op])
		}

	case *revalidate:
		prof, err := scenario.ByName(*scenarioFl)
		fatalIf(err)
		sc := scenario.Generate(prof)
		pl := load(*in)
		t0 := time.Now()
		removed := pl.Revalidate(sc.Suite, *workers)
		fmt.Printf("revalidated %s pool in %v: %d mutations dropped, %d remain\n",
			prof.Name, time.Since(t0).Round(time.Millisecond), removed, pl.Size())
		if *out != "" {
			save(pl, *out)
		}

	case *fsck:
		rep, err := st.Audit()
		fatalIf(err)
		fmt.Printf("fsck %s: %d pack(s) scanned, %d record(s) verified\n",
			*storeDir, rep.PacksScanned, rep.RecordsVerified)
		if rep.TailTruncated {
			fmt.Println("  torn tail truncated from the newest pack (a crash mid-append; no records lost)")
		}
		for _, q := range rep.Quarantined {
			fmt.Printf("  quarantined corrupt pack: %s\n", q)
		}
		if len(rep.Quarantined) > 0 {
			fatalIf(fmt.Errorf("%d pack(s) quarantined; their records were dropped from the index", len(rep.Quarantined)))
		}
		fmt.Println("  clean")

	case *compact:
		before := st.Stats()
		live, err := st.Compact()
		fatalIf(err)
		after := st.Stats()
		fmt.Printf("compacted %s: %d live record(s) kept, %d -> %d pack(s), %d -> %d bytes\n",
			*storeDir, live, before.Packs, after.Packs, before.Bytes, after.Bytes)

	case *storeStats:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(st.Stats()))
	}
}

func save(pl *pool.Pool, path string) {
	f, err := os.Create(path)
	fatalIf(err)
	defer f.Close()
	fatalIf(pl.Save(f))
	fmt.Printf("wrote %s\n", path)
}

func load(path string) *pool.Pool {
	if path == "" {
		cliutil.Fatalf("poolctl", "missing -in")
	}
	f, err := os.Open(path)
	fatalIf(err)
	defer f.Close()
	pl, err := pool.Load(f)
	fatalIf(err)
	return pl
}

// fatalIf reports a runtime failure (I/O, corrupt input, unknown
// scenario) and exits 1 — distinct from flag-usage mistakes, which exit
// 2 via cliutil.Fatalf before any work starts.
func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "poolctl:", err)
		os.Exit(1)
	}
}
