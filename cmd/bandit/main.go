// Command bandit runs a single MWU learner on a single dataset and traces
// its convergence: iteration, leader, leader probability, congestion.
// Useful for understanding the dynamics behind the aggregate tables.
//
// Usage:
//
//	bandit -dataset random256 -algorithm distributed [-maxiter 10000]
//	       [-seed 1] [-print-every 50] [-trace run.jsonl] [-trace-sample 10]
//
// -print-every writes human-readable progress lines to stdout;
// -trace records the machine-readable JSONL event stream (internal/obs
// schema). The former was historically called -trace, renamed to free
// the flag for the event stream shared by every binary.
package main

import (
	"context"

	"flag"
	"fmt"
	"os"

	"repro/internal/bandit"
	"repro/internal/cliutil"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/mwu"
	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	var (
		dsName  = flag.String("dataset", "random256", "dataset name (see -list)")
		list    = flag.Bool("list", false, "list dataset names and exit")
		alg     = flag.String("algorithm", "standard", "standard | distributed | slate | optimistic | congestion")
		maxIter = flag.Int("maxiter", 10000, "iteration limit")
		seed    = flag.Uint64("seed", 1, "random seed")
		printEvery = flag.Int("print-every", 0, "print a progress line every N iterations (0 = off)")

		faultRate = flag.Float64("faultrate", 0, "inject probe faults at this base rate (0 = off)")
		managed   = flag.Bool("managed", false, "arm default timeout/retry/hedge policies against injected faults")
		cutoff    = flag.Int("cutoff", 0, "straggler cutoff in virtual ticks (0 = wait stragglers out)")
	)
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	cliutil.Rate01("bandit", "faultrate", *faultRate)
	cliutil.NonNegative("bandit", "cutoff", *cutoff)
	cliutil.NonNegative("bandit", "maxiter", *maxIter)
	cliutil.NonNegative("bandit", "print-every", *printEvery)
	obsFlags.Validate("bandit")

	if *list {
		for _, n := range dataset.Names() {
			fmt.Println(n)
		}
		return
	}

	ds, err := dataset.Get(*dsName)
	if err != nil {
		fatal(err)
	}
	r := rng.New(*seed)
	learner, err := mwu.NewLearner(mwu.Config{Algorithm: *alg, K: ds.Size}, r.Split())
	if err != nil {
		fatal(err)
	}
	problem := bandit.NewProblem(ds.Dist)

	fmt.Printf("%s on %s (k=%d, best arm %d with value %.4f)\n",
		*alg, ds.Name, ds.Size, ds.Dist.Best(), ds.Dist.BestValue())
	fmt.Printf("agents per iteration: %d\n", learner.Agents())

	tracer, reg, obsCleanup := obsFlags.Setup("bandit", obs.RunID(*seed, "bandit", ds.Name, *alg))
	defer obsCleanup()

	cfg := mwu.RunConfig{MaxIter: *maxIter, Workers: 1, StragglerCutoff: *cutoff, Trace: tracer}
	if *faultRate > 0 {
		cfg.Faults = faults.New(faults.Uniform(*seed, *faultRate))
	}
	if *managed {
		cfg.Policies = faults.DefaultPolicies()
	}
	if *printEvery > 0 {
		every := *printEvery
		cfg.OnIteration = func(iter int, l mwu.Learner) bool {
			if iter%every == 0 {
				fmt.Printf("  t=%-6d leader=%-6d leaderProb=%.4f congestion(max)=%d\n",
					iter, l.Leader(), l.LeaderProb(), l.Metrics().MaxCongestion)
			}
			return false
		}
	}
	// SIGINT/SIGTERM cancels the run; mwu.Run returns the best-so-far state
	// and the deferred cleanup flushes the trace.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	res := mwu.Run(ctx, learner, problem, r.Split(), cfg)
	learner.Metrics().Export(reg, "mwu")

	fmt.Printf("converged: %v after %d update cycles\n", res.Converged, res.Iterations)
	fmt.Printf("choice: arm %d (value %.4f, accuracy %.2f%%)\n",
		res.Choice, ds.Dist.Value(res.Choice), problem.Accuracy(res.Choice))
	m := learner.Metrics()
	fmt.Printf("cost: %d probes, %d CPU-iterations, congestion max %d mean %.1f, memory %d floats/node\n",
		m.Probes, m.CPUIterations, m.MaxCongestion, m.MeanCongestion(), m.MemoryFloats)
	if m.Faults.Any() {
		fmt.Printf("faults: %s (degraded: %v)\n", m.Faults.String(), res.Degraded)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bandit:", err)
	os.Exit(1)
}
