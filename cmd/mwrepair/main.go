// Command mwrepair runs the full MWRepair pipeline end to end on one
// repair scenario: generate (or load) the defective program and its test
// suite, precompute the safe-mutation pool (phase 1, embarrassingly
// parallel), then run the online MWU-guided search for a repair (phase 2)
// and print the patch.
//
// Usage:
//
//	mwrepair -scenario gzip-2009-09-26 [-algorithm standard]
//	         [-maxiter 2000] [-workers 8] [-seed 1]
//	         [-savepool pool.json] [-loadpool pool.json] [-store data/] [-v]
//	         [-trace run.jsonl] [-trace-sample 10] [-debug-addr localhost:6060]
//
// Scenarios are the named registry entries (see -list). -trace records
// the iteration-level event stream (internal/obs JSONL schema); the
// stream is seed-deterministic, byte-identical at any -workers count.
//
// -store opens (or creates) a persistent evaluation store in the given
// data directory: pool precompute and the online phase reuse verdicts
// recorded by earlier runs over the same suite, and record new ones for
// the next run. Warm-starting never changes the result — the patch and
// trace stay byte-identical to a cold run, only cheaper.
package main

import (
	"context"

	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mutation"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/store"
)

func main() {
	var (
		name     = flag.String("scenario", "lighttpd-1806-1807", "registry scenario name")
		list     = flag.Bool("list", false, "list available scenarios and exit")
		alg      = flag.String("algorithm", "standard", "MWU realization: standard | distributed | slate | optimistic | congestion")
		maxIter  = flag.Int("maxiter", 2000, "online phase iteration limit")
		workers  = flag.Int("workers", 8, "parallel workers for pool build and probes")
		seed     = flag.Uint64("seed", 1, "random seed")
		savePool = flag.String("savepool", "", "write the precomputed pool to this file")
		loadPool = flag.String("loadpool", "", "read a previously saved pool instead of precomputing")
		storeDir = flag.String("store", "", "persistent evaluation-store data directory (warm-starts this run, records for the next)")
		verbose  = flag.Bool("v", false, "print the defective program and the repaired program")

		faultRate = flag.Float64("faultrate", 0, "inject probe faults at this base rate (0 = off)")
		managed   = flag.Bool("managed", false, "arm default timeout/retry/hedge policies against injected faults")
		cutoff    = flag.Int("cutoff", 0, "straggler cutoff in virtual ticks (0 = wait stragglers out)")
		timeout   = flag.Duration("timeout", 0, "cancel the repair after this wall-clock budget (0 = none)")
	)
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	cliutil.Rate01("mwrepair", "faultrate", *faultRate)
	cliutil.NonNegative("mwrepair", "cutoff", *cutoff)
	cliutil.NonNegative("mwrepair", "maxiter", *maxIter)
	cliutil.Positive("mwrepair", "workers", *workers)
	cliutil.NonNegativeDuration("mwrepair", "timeout", *timeout)
	obsFlags.Validate("mwrepair")

	if *list {
		for _, p := range scenario.Registry {
			extra := ""
			if p.DriftSteps > 0 {
				extra = fmt.Sprintf("  drift=%dx%d/%s", p.DriftSteps, p.DriftInterval, p.DriftKind)
			}
			if p.CongestionLambda > 0 {
				extra += fmt.Sprintf("  lambda=%g", p.CongestionLambda)
			}
			fmt.Printf("%-20s family=%-12s options=%-5d blocks=%d%s\n", p.Name, p.FamilyName(), p.Options, p.Blocks, extra)
		}
		return
	}

	prof, err := scenario.ByName(*name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario %s: generating program and test suite...\n", prof.Name)
	sc := scenario.Generate(prof)
	fmt.Printf("  program: %d statements, suite: %d positive + %d negative tests\n",
		sc.Program.Len(), len(sc.Suite.Positive), len(sc.Suite.Negative))
	if *verbose {
		fmt.Println("--- defective program ---")
		fmt.Print(sc.Program.String())
		fmt.Println("-------------------------")
	}

	tracer, reg, obsCleanup := obsFlags.Setup("mwrepair", obs.RunID(*seed, "mwrepair", prof.Name, *alg))
	defer obsCleanup()

	// The store must be flushed and snapshotted on every exit path;
	// os.Exit skips defers, so the manual exits below call closeStore
	// explicitly (it is idempotent) and fatal runs registered hooks.
	var st *store.Store
	closeStore := func() {
		if st == nil {
			return
		}
		s := st
		st = nil
		if err := s.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mwrepair: store close:", err)
		}
	}
	defer closeStore()
	if *storeDir != "" {
		var err error
		if st, err = store.Open(store.Options{Dir: *storeDir}); err != nil {
			fatal(err)
		}
		fatalHooks = append(fatalHooks, closeStore)
		ss := st.Stats()
		fmt.Printf("store %s: %d eval records, %d pool records, %d pack(s)\n",
			*storeDir, ss.EvalRecords, ss.PoolRecords, ss.Packs)
	}

	// SIGINT/SIGTERM cancels the run context: phase 1 stops at a batch
	// boundary, phase 2 returns the best-so-far state, and the deferred
	// cleanup still flushes the trace. A second signal kills immediately.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	r := rng.New(*seed)
	var pl *pool.Pool
	if *loadPool != "" {
		f, err := os.Open(*loadPool)
		if err != nil {
			fatal(err)
		}
		pl, err = pool.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("phase 1: loaded pool of %d safe mutations from %s\n", pl.Size(), *loadPool)
	} else {
		t0 := time.Now()
		pl = sc.BuildPoolStored(ctx, *workers, r.Split(), tracer, st)
		ps := pl.Stats()
		ps.Export(reg, "pool")
		fmt.Printf("phase 1: precomputed %d safe mutations in %v (%d candidates evaluated, %.0f%% safe)\n",
			pl.Size(), time.Since(t0).Round(time.Millisecond), ps.Evaluated, 100*ps.SafeRate())
		if ps.StoreHits > 0 {
			fmt.Printf("  store: %d warm verdicts reused\n", ps.StoreHits)
		}
	}
	if *savePool != "" {
		f, err := os.Create(*savePool)
		if err != nil {
			fatal(err)
		}
		if err := pl.Save(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("  pool saved to %s\n", *savePool)
	}

	if pl.Size() == 0 {
		if ctx.Err() != nil {
			fmt.Println("phase 1: CANCELLED before any safe mutation was found")
			closeStore()
			obsCleanup()
			os.Exit(1)
		}
		fatal(fmt.Errorf("empty mutation pool: no safe mutations found for %s", prof.Name))
	}

	cfg := core.Config{
		MaxIter:          *maxIter,
		Workers:          *workers,
		MaxX:             prof.Options,
		StragglerCutoff:  *cutoff,
		Trace:            tracer,
		Registry:         reg,
		Store:            st,
		Drift:            sc.Drift,
		CongestionLambda: prof.CongestionLambda,
	}
	if sc.Drift.Len() > 0 {
		fmt.Printf("  drift schedule: %d steps (%s), first at %d probes\n",
			sc.Drift.Len(), prof.DriftKind, sc.Drift.Steps[0].AfterProbes)
	}
	if *faultRate > 0 {
		cfg.Faults = faults.New(faults.Uniform(*seed, *faultRate))
	}
	if *managed {
		cfg.Policies = faults.DefaultPolicies()
	}

	t0 := time.Now()
	res, err := core.RepairWithAlgorithm(ctx, *alg, pl, sc.Suite, r.Split(), cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0).Round(time.Millisecond)

	if res.Faults.Any() {
		fmt.Printf("  faults: %s (degraded: %v)\n", res.Faults.String(), res.Degraded)
	}
	familyStats := func() {
		if res.DriftSteps > 0 {
			fmt.Printf("  drift: %d suite change(s) applied mid-run\n", res.DriftSteps)
		}
		if res.CongestionCost > 0 {
			fmt.Printf("  congestion: total probe cost %.0f (lambda=%g), max arm load %d\n",
				res.CongestionCost, prof.CongestionLambda, res.MaxLoad)
		}
	}
	if !res.Repaired {
		state := "NO repair found"
		if res.Cancelled {
			state = "CANCELLED before a repair"
		}
		fmt.Printf("phase 2: %s in %d iterations (%d probes, %d fitness evals, %v)\n",
			state, res.Iterations, res.Probes, res.FitnessEvals, elapsed)
		fmt.Printf("  cache: %d hits (%d dedup-suppressed), %d contended shard locks\n",
			res.CacheHits, res.DedupSuppressed, res.ShardContention)
		familyStats()
		closeStore()
		obsCleanup() // os.Exit skips defers; flush the trace first
		os.Exit(1)
	}
	fmt.Printf("phase 2 (%s MWU): REPAIRED in %d iterations × %d agents (%d probes, %d fitness evals, %v)\n",
		*alg, res.Iterations, res.Agents, res.Probes, res.FitnessEvals, elapsed)
	fmt.Printf("  cache: %d hits (%d dedup-suppressed), %d contended shard locks\n",
		res.CacheHits, res.DedupSuppressed, res.ShardContention)
	if res.WarmEntries > 0 {
		fmt.Printf("  store: %d entries warm-started, %d warm hits\n", res.WarmEntries, res.WarmHits)
	}
	familyStats()
	fmt.Printf("  learned composition size x* = %d\n", res.LearnedArm)
	fmt.Printf("  patch (%d mutations):\n", len(res.Patch))
	for _, m := range res.Patch {
		fmt.Printf("    %-16s  %s\n", m.ID(), describeMutation(sc, m))
	}
	if *verbose {
		fmt.Println("--- repaired program ---")
		fmt.Print(res.Program.String())
		fmt.Println("------------------------")
	}
}

func describeMutation(sc *scenario.Scenario, m mutation.Mutation) string {
	target := sc.Program.Stmts[m.At].String()
	switch m.Op {
	case mutation.Delete:
		return fmt.Sprintf("delete %q", target)
	case mutation.Replace:
		return fmt.Sprintf("replace %q with %q", target, sc.Program.Stmts[m.From].String())
	case mutation.Insert:
		return fmt.Sprintf("insert %q after %q", sc.Program.Stmts[m.From].String(), target)
	case mutation.Swap:
		return fmt.Sprintf("swap %q and %q", target, sc.Program.Stmts[m.From].String())
	default:
		return ""
	}
}

// fatalHooks run (newest first) before fatal exits; os.Exit skips
// deferred cleanups, so anything that must flush on a fatal error —
// today just the evaluation store — registers itself here.
var fatalHooks []func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mwrepair:", err)
	for i := len(fatalHooks) - 1; i >= 0; i-- {
		fatalHooks[i]()
	}
	os.Exit(1)
}
