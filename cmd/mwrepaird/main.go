// Command mwrepaird is the repair-as-a-service daemon: a long-running
// HTTP/JSON server that accepts repair jobs (a registry scenario name, or
// a serialized TinyLang program plus test suite), runs them on a bounded
// worker fleet with priority admission, and serves status, progress and
// patches — the service form of the one-shot cmd/mwrepair pipeline.
//
// Usage:
//
//	mwrepaird [-addr 127.0.0.1:8080] [-jobs 2] [-queue 16]
//	          [-drain 10s] [-trace-dir traces/] [-addr-file path]
//	          [-debug-addr localhost:6060] [-store data/]
//
// API:
//
//	POST   /v1/jobs            submit a job          (202; 429 when full)
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       status + progress
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/jobs/{id}/patch fetch the patch
//	GET    /v1/scenarios       scenario registry
//	GET    /healthz            liveness (503 while draining)
//	GET    /debug/metrics      metrics snapshot
//
// A job with the same scenario/seed/config as a cmd/mwrepair invocation
// produces a byte-identical patch and (with "trace": true and -trace-dir)
// a byte-identical JSONL trace. SIGINT/SIGTERM drains gracefully: stop
// admitting, let running jobs finish within -drain (then cancel them for
// best-so-far partial results), flush every trace sink, exit 0.
//
// With -store, the daemon opens one persistent evaluation store in the
// given data directory and shares it across every job: repeated
// scenarios warm-start from earlier jobs' verdicts (results stay
// byte-identical, just cheaper), and the store survives restarts —
// /healthz and /debug/metrics report its state under "store" /
// "server.store.*". The store is flushed and snapshotted at drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		jobs     = flag.Int("jobs", 2, "concurrent repair-job workers")
		queue    = flag.Int("queue", 16, "admission queue depth (429 beyond it)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for running jobs")
		traceDir = flag.String("trace-dir", "", "write per-job JSONL traces to this directory")
		addrFile = flag.String("addr-file", "", "write the bound address to this file (for scripts using :0)")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof + /debug/metrics on this extra address")
		storeDir = flag.String("store", "", "persistent evaluation-store data directory shared across jobs")
	)
	flag.Parse()
	cliutil.Positive("mwrepaird", "jobs", *jobs)
	cliutil.Positive("mwrepaird", "queue", *queue)
	cliutil.NonNegativeDuration("mwrepaird", "drain", *drain)

	logger := log.New(os.Stderr, "mwrepaird: ", log.LstdFlags|log.Lmicroseconds)

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			logger.Fatalf("-trace-dir: %v", err)
		}
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(store.Options{Dir: *storeDir}); err != nil {
			logger.Fatalf("-store: %v", err)
		}
		ss := st.Stats()
		logger.Printf("store %s: %d eval records, %d pool records, %d pack(s)",
			*storeDir, ss.EvalRecords, ss.PoolRecords, ss.Packs)
	}

	reg := obs.NewRegistry()
	mgr := server.NewManager(server.Config{
		Workers:      *jobs,
		QueueDepth:   *queue,
		TraceDir:     *traceDir,
		DrainTimeout: *drain,
		Registry:     reg,
		Store:        st,
		Logf:         logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Fatalf("-addr-file: %v", err)
		}
	}

	var stopDebug func() error
	if *debug != "" {
		dAddr, stop, err := obs.StartDebugServer(*debug, reg)
		if err != nil {
			logger.Fatalf("-debug-addr: %v", err)
		}
		stopDebug = stop
		logger.Printf("debug server on http://%s/debug/pprof/", dAddr)
	}

	srv := &http.Server{
		Handler:           server.Handler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}()
	logger.Printf("listening on http://%s (jobs=%d queue=%d)", bound, *jobs, *queue)
	fmt.Printf("mwrepaird: listening on http://%s\n", bound)

	// Block until SIGINT/SIGTERM, then drain: jobs first (HTTP stays up
	// so clients can watch the drain), then the HTTP server, then the
	// side-band debug server. A second signal kills immediately.
	ctx, stop := cliutil.SignalContext(context.Background())
	<-ctx.Done()
	stop()
	logger.Printf("signal received; draining (budget %v)", *drain)

	shCtx, cancel := context.WithTimeout(context.Background(), *drain+30*time.Second)
	defer cancel()
	if err := mgr.Shutdown(shCtx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
		_ = srv.Close()
	}
	if stopDebug != nil {
		if err := stopDebug(); err != nil {
			logger.Printf("debug shutdown: %v", err)
		}
	}
	// Jobs are drained; flush + snapshot the store so the next start
	// warm-opens from the snapshot instead of a full pack scan.
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Printf("store close: %v", err)
		}
	}
	logger.Printf("drained; exiting")
}
