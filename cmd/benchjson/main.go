// Command benchjson converts `go test -bench` output on stdin into a JSON
// array of {name, ns_per_op, allocs_per_op} records, one per benchmark
// result line. The Makefile's bench target pipes the sampling benchmarks
// through it to produce BENCH_PR2.json, so benchmark history is diffable
// in review rather than buried in CI logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mwu"
	"repro/internal/obs"
)

type record struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsOp   *int64  `json:"allocs_per_op,omitempty"`
	BytesOp    *int64  `json:"bytes_per_op,omitempty"`
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkSample/naive/k=64-8   62011   19290 ns/op   0 B/op   0 allocs/op
//
// returning ok=false for non-result lines (headers, PASS, ok ...).
func parseLine(line string) (record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return record{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return record{}, false
	}
	// Strip the trailing -GOMAXPROCS suffix from the name.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := record{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesOp = &v
		case "allocs/op":
			r.AllocsOp = &v
		}
	}
	return r, true
}

// validateResilience decodes an `experiments -resilience -json` export
// and checks the documented schema keys are present — the CI chaos
// smoke's end-to-end guard that the E11 export stays machine-readable.
func validateResilience(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var cells []map[string]json.RawMessage
	if err := json.Unmarshal(buf, &cells); err != nil {
		return fmt.Errorf("%s: not a JSON array of objects: %w", path, err)
	}
	if len(cells) == 0 {
		return fmt.Errorf("%s: empty cell array", path)
	}
	required := []string{
		"algorithm", "mode", "faultRate", "runs", "convergedRuns", "degradedRuns",
		"iterationsMean", "accuracyMean", "faultsInjected", "stalledCycles",
		"missing", "retries", "timeouts", "hedgesWon", "crashes", "restarts",
		"msgDropped", "survivorsMean",
	}
	for i, c := range cells {
		for _, key := range required {
			if _, ok := c[key]; !ok {
				return fmt.Errorf("%s: cell %d missing key %q", path, i, key)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: %d resilience cells, schema ok\n", path, len(cells))
	return nil
}

// validateFamilies decodes an `experiments -families -json` export and
// checks both the schema and the experiment's coverage promises: every
// cell ran, all three non-paper scenario families appear, every MWU
// realization appears, at least one drifting cell actually applied a
// drift step (a schedule that never fires is a silently broken
// fixture), and every adversarial cell carries a congestion bill.
func validateFamilies(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal(buf, &raw); err != nil {
		return fmt.Errorf("%s: not a JSON array of objects: %w", path, err)
	}
	if len(raw) == 0 {
		return fmt.Errorf("%s: empty cell array", path)
	}
	required := []string{
		"profile", "family", "algorithm", "runs", "repairedRuns",
		"iterationsMean", "probesMean", "fitnessEvalsMean",
		"driftStepsMean", "congestionCostMean", "maxLoad",
	}
	for i, c := range raw {
		for _, key := range required {
			if _, ok := c[key]; !ok {
				return fmt.Errorf("%s: cell %d missing key %q", path, i, key)
			}
		}
	}
	var cells []struct {
		Profile        string  `json:"profile"`
		Family         string  `json:"family"`
		Algorithm      string  `json:"algorithm"`
		Runs           int     `json:"runs"`
		ProbesMean     float64 `json:"probesMean"`
		DriftStepsMean float64 `json:"driftStepsMean"`
		CongestionMean float64 `json:"congestionCostMean"`
	}
	if err := json.Unmarshal(buf, &cells); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	families := map[string]bool{}
	algorithms := map[string]bool{}
	var driftApplied float64
	for _, c := range cells {
		if c.Runs <= 0 {
			return fmt.Errorf("%s: cell %s/%s has no runs", path, c.Profile, c.Algorithm)
		}
		families[c.Family] = true
		algorithms[c.Algorithm] = true
		if c.Family == "drifting" {
			driftApplied += c.DriftStepsMean
		}
		if c.Family == "adversarial" && c.CongestionMean < c.ProbesMean {
			return fmt.Errorf("%s: adversarial cell %s/%s: congestion cost %.0f below probe count %.0f",
				path, c.Profile, c.Algorithm, c.CongestionMean, c.ProbesMean)
		}
	}
	for _, fam := range []string{"multi-hunk", "drifting", "adversarial"} {
		if !families[fam] {
			return fmt.Errorf("%s: family %q missing from the export", path, fam)
		}
	}
	for _, alg := range mwu.Names {
		if !algorithms[alg] {
			return fmt.Errorf("%s: algorithm %q missing from the export", path, alg)
		}
	}
	if driftApplied == 0 {
		return fmt.Errorf("%s: no drifting cell applied a drift step", path)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: %d family cells (%d families, %d algorithms), schema ok\n",
		path, len(cells), len(families), len(algorithms))
	return nil
}

// validateServe schema-checks a repairbench BENCH_SERVE.json export: the
// `make servebench` smoke's gate that the service-level benchmark stays
// machine-readable AND honest — every sweep cell must have completed
// jobs, the full latency decomposition, and zero hot-spin retries (a
// 429/503 whose Retry-After the client could not honor because the
// server sent none).
func validateServe(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Schema string                       `json:"schema"`
		Target string                       `json:"target"`
		Runs   []map[string]json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fmt.Errorf("%s: not a repairbench report: %w", path, err)
	}
	if doc.Schema != "repairbench/v1" {
		return fmt.Errorf("%s: schema %q, want repairbench/v1", path, doc.Schema)
	}
	if len(doc.Runs) == 0 {
		return fmt.Errorf("%s: no runs", path)
	}
	required := []string{
		"workload", "mode", "durationS", "submitted", "completed", "repaired",
		"failed", "cancelled", "rejected429", "rejected503", "retries",
		"hotSpins", "backoffWaitMs", "jobsPerSec", "repairsPerSec", "latencyMs",
	}
	workloads := map[string]bool{}
	closedLevels := map[int]bool{}
	for i, run := range doc.Runs {
		for _, key := range required {
			if _, ok := run[key]; !ok {
				return fmt.Errorf("%s: run %d missing key %q", path, i, key)
			}
		}
		var cell struct {
			Workload    string  `json:"workload"`
			Mode        string  `json:"mode"`
			Concurrency int     `json:"concurrency"`
			OfferedRPS  float64 `json:"offeredRps"`
			Completed   int     `json:"completed"`
			HotSpins    int64   `json:"hotSpins"`
			JobsPerSec  float64 `json:"jobsPerSec"`
			LatencyMs   map[string]struct {
				N   int      `json:"n"`
				P50 *float64 `json:"p50"`
				P95 *float64 `json:"p95"`
				P99 *float64 `json:"p99"`
			} `json:"latencyMs"`
		}
		raw, _ := json.Marshal(run)
		if err := json.Unmarshal(raw, &cell); err != nil {
			return fmt.Errorf("%s: run %d: %w", path, i, err)
		}
		label := fmt.Sprintf("run %d (%s/%s)", i, cell.Workload, cell.Mode)
		switch cell.Mode {
		case "closed":
			if cell.Concurrency < 1 {
				return fmt.Errorf("%s: %s: closed run without a concurrency level", path, label)
			}
			closedLevels[cell.Concurrency] = true
		case "open":
			if cell.OfferedRPS <= 0 {
				return fmt.Errorf("%s: %s: open run without an offered rate", path, label)
			}
		default:
			return fmt.Errorf("%s: %s: unknown mode", path, label)
		}
		workloads[cell.Workload] = true
		if cell.Completed == 0 || cell.JobsPerSec <= 0 {
			return fmt.Errorf("%s: %s: no completed jobs", path, label)
		}
		if cell.HotSpins != 0 {
			return fmt.Errorf("%s: %s: %d hot-spin retries — the daemon sent a 429/503 without a usable Retry-After", path, label, cell.HotSpins)
		}
		for _, dim := range []string{"queueWait", "exec", "e2e"} {
			lat, ok := cell.LatencyMs[dim]
			if !ok {
				return fmt.Errorf("%s: %s: latencyMs missing %q", path, label, dim)
			}
			if lat.N == 0 || lat.P50 == nil || lat.P95 == nil || lat.P99 == nil {
				return fmt.Errorf("%s: %s: latencyMs[%s] incomplete (want n>0 with p50/p95/p99)", path, label, dim)
			}
		}
	}
	if len(workloads) < 2 {
		return fmt.Errorf("%s: only %d workload mix(es); the sweep needs >= 2", path, len(workloads))
	}
	if len(closedLevels) > 0 && len(closedLevels) < 3 {
		return fmt.Errorf("%s: only %d closed-loop concurrency level(s); the sweep needs >= 3", path, len(closedLevels))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: %d runs (%d workloads, %d closed levels), schema ok, zero hot-spins\n",
		path, len(doc.Runs), len(workloads), len(closedLevels))
	return nil
}

// validatePsample checks a committed BENCH_PR9.json concurrent-sampling
// record: the BenchmarkParallelSample trio must be present under its exact
// names (this file's own benchmark-line parser strips the -GOMAXPROCS
// suffix), every line must have run, and the frozen numbers must still
// show the redesign's point — the lock-free alias draw path at least 4×
// the throughput of the mutex-guarded Fenwick baseline at the same shape.
func validatePsample(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var records []record
	if err := json.Unmarshal(buf, &records); err != nil {
		return fmt.Errorf("%s: not a benchjson record array: %w", path, err)
	}
	byName := map[string]record{}
	for _, r := range records {
		byName[r.Name] = r
	}
	const (
		lockedName = "BenchmarkParallelSample/fenwick-locked/k=16384/streams=8"
		aliasName  = "BenchmarkParallelSample/alias/k=16384/streams=8"
		buildName  = "BenchmarkParallelSample/alias-build/k=16384/workers=8"
	)
	for _, name := range []string{lockedName, aliasName, buildName} {
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("%s: missing %q", path, name)
		}
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			return fmt.Errorf("%s: %q did not run (iterations=%d, ns/op=%g)", path, name, r.Iterations, r.NsPerOp)
		}
	}
	ratio := byName[lockedName].NsPerOp / byName[aliasName].NsPerOp
	if ratio < 4 {
		return fmt.Errorf("%s: locked-Fenwick/alias draw ratio %.2fx below the 4x gate (%.1f vs %.1f ns/op)",
			path, ratio, byName[lockedName].NsPerOp, byName[aliasName].NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: parallel-sampling trio ok, alias draw %.1fx over locked Fenwick\n", path, ratio)
	return nil
}

// validateTrace schema-checks a -trace JSONL event stream against the
// internal/obs contract (known event types, dense sequence numbers,
// non-negative coordinates) — the `make trace` smoke's validator.
func validateTrace(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return validateTraceDir(path)
	}
	return validateTraceFile(path)
}

func validateTraceFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := obs.ValidateJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: %d trace events, schema ok\n", path, n)
	return nil
}

// validateTraceDir validates every *.jsonl file in a directory — the
// layout mwrepaird's -trace-dir produces (one trace per job). An empty
// directory is an error: validating nothing should not look like success.
func validateTraceDir(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("%s: no *.jsonl trace files", dir)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := validateTraceFile(p); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: %d trace files, schema ok\n", dir, len(paths))
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	resilienceFile := flag.String("validate-resilience", "", "validate an `experiments -resilience -json` export instead of converting benchmarks")
	traceFile := flag.String("validate-trace", "", "validate a -trace JSONL event stream instead of converting benchmarks")
	serveFile := flag.String("validate-serve", "", "validate a repairbench BENCH_SERVE.json report instead of converting benchmarks")
	psampleFile := flag.String("validate", "", "validate a committed BENCH_PR9.json concurrent-sampling record instead of converting benchmarks")
	familiesFile := flag.String("validate-families", "", "validate an `experiments -families -json` export instead of converting benchmarks")
	flag.Parse()

	if *familiesFile != "" {
		if err := validateFamilies(*familiesFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if *psampleFile != "" {
		if err := validatePsample(*psampleFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if *resilienceFile != "" {
		if err := validateResilience(*resilienceFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *serveFile != "" {
		if err := validateServe(*serveFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *traceFile != "" {
		if err := validateTrace(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	var records []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output so the pipe stays observable in CI logs.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(strings.TrimSpace(line)); ok {
			records = append(records, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}
