// Command repairbench is the system-level load harness for the repair
// daemon: where `make bench` measures ns/op of inner loops, repairbench
// measures what a *service* delivers — repairs per second and queue-wait /
// execution / end-to-end latency percentiles as a function of offered
// load, per workload mix.
//
// Usage:
//
//	repairbench [-addr http://host:port]            # target a live daemon
//	            [-daemon-jobs 4 -queue 64 -retry-after 1s -store dir]  # or start one in-process
//	            [-workloads cheap,heavy] [-mode closed|open|both]
//	            [-concurrency 1,2,4,8] [-rates 8,16]
//	            [-duration 3s] [-max-jobs 0] [-job-timeout 60s]
//	            [-poll 2ms] [-seed 1] [-o BENCH_SERVE.json]
//
// Modes: the closed loop keeps a fixed number of client workers busy
// (submit, await, repeat) and sweeps that concurrency; the open loop
// submits on a fixed arrival schedule independent of completions and
// sweeps the offered rate, so saturation appears as latency growth
// instead of client-side throttling.
//
// Backpressure is measured honestly: a 429/503 submit is not a failure —
// the client backs off for at least the server's Retry-After and retries,
// and the report separates rejected submits, retries, total backoff wait,
// and hot-spins (rejections whose Retry-After was missing or zero — a
// server-side pacing bug) from completed-job throughput and latency.
//
// Each sweep cell reports client-observed percentiles (exact, from raw
// samples) alongside the daemon's own /debug/metrics histogram deltas
// rendered through the same interpolated quantile estimator
// (obs.QuantileFromBuckets) — when the two disagree by more than bucket
// resolution, the daemon's instrumentation is lying.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
)

func main() {
	var (
		addr       = flag.String("addr", "", "base URL of a running daemon (default: start one in-process)")
		daemonJobs = flag.Int("daemon-jobs", 4, "[in-process] concurrent repair-job workers")
		queue      = flag.Int("queue", 64, "[in-process] admission queue depth")
		retryAfter = flag.Duration("retry-after", time.Second, "[in-process] Retry-After backpressure hint")
		storeDir   = flag.String("store", "", "[in-process] persistent evaluation-store directory (enables the warm workload's reuse)")

		workloadList = flag.String("workloads", "cheap,heavy", "comma-separated workload mixes ("+workloadNames()+")")
		mode         = flag.String("mode", "closed", "load model: closed, open, or both")
		concurrency  = flag.String("concurrency", "1,2,4,8", "closed-loop client-concurrency sweep levels")
		rates        = flag.String("rates", "4,16", "open-loop offered submit rates (jobs/sec)")
		duration     = flag.Duration("duration", 3*time.Second, "submit window per sweep cell")
		maxJobs      = flag.Int("max-jobs", 0, "cap on accepted jobs per cell (0 = duration-bound)")
		jobTimeout   = flag.Duration("job-timeout", 60*time.Second, "per-job wall-clock budget (becomes the job spec's timeout)")
		poll         = flag.Duration("poll", 2*time.Millisecond, "status poll interval while awaiting a job")
		seed         = flag.Uint64("seed", 1, "base seed for the deterministic per-job seed schedule")
		out          = flag.String("o", "", "write the JSON report here (default stdout)")
		verbose      = flag.Bool("v", false, "log daemon lifecycle and per-cell progress to stderr")
	)
	flag.Parse()
	cliutil.Positive("repairbench", "daemon-jobs", *daemonJobs)
	cliutil.Positive("repairbench", "queue", *queue)
	cliutil.NonNegativeDuration("repairbench", "retry-after", *retryAfter)
	cliutil.NonNegativeDuration("repairbench", "job-timeout", *jobTimeout)
	if *duration <= 0 {
		cliutil.Fatalf("repairbench", "-duration must be > 0, got %v", *duration)
	}
	if *poll <= 0 {
		cliutil.Fatalf("repairbench", "-poll must be > 0, got %v", *poll)
	}
	if *mode != "closed" && *mode != "open" && *mode != "both" {
		cliutil.Fatalf("repairbench", "-mode must be closed, open or both, got %q", *mode)
	}

	selected, err := selectWorkloads(*workloadList)
	if err != nil {
		cliutil.Fatalf("repairbench", "-workloads: %v", err)
	}
	levels, err := parseIntList(*concurrency)
	if err != nil || len(levels) == 0 {
		cliutil.Fatalf("repairbench", "-concurrency: want positive integers like 1,2,4, got %q", *concurrency)
	}
	rateLevels, err := parseFloatList(*rates)
	if err != nil || len(rateLevels) == 0 {
		cliutil.Fatalf("repairbench", "-rates: want positive numbers like 4,16, got %q", *rates)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "repairbench: "+format+"\n", args...)
		}
	}

	report := Report{
		Schema:     "repairbench/v1",
		Target:     "in-process",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	base := *addr
	if base == "" {
		url, stop, err := startDaemon(daemonOpts{
			workers:    *daemonJobs,
			queueDepth: *queue,
			retryAfter: *retryAfter,
			storeDir:   *storeDir,
			logf:       logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "repairbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "repairbench: daemon shutdown: %v\n", err)
			}
		}()
		base = url
		report.Daemon = &DaemonInfo{
			Workers:    *daemonJobs,
			QueueDepth: *queue,
			RetryAfter: retryAfter.String(),
			Store:      *storeDir != "",
		}
		logf("in-process daemon on %s (jobs=%d queue=%d)", base, *daemonJobs, *queue)
	} else {
		report.Target = strings.TrimRight(base, "/")
		base = report.Target
	}

	c := &client{
		base:            base,
		hc:              &http.Client{Timeout: 30 * time.Second},
		poll:            *poll,
		fallbackBackoff: 250 * time.Millisecond,
	}

	ctx, stopSig := cliutil.SignalContext(context.Background())
	defer stopSig()

	var cells []runOpts
	for _, wl := range selected {
		if *mode == "closed" || *mode == "both" {
			for _, conc := range levels {
				cells = append(cells, runOpts{workload: wl, mode: "closed", concurrency: conc})
			}
		}
		if *mode == "open" || *mode == "both" {
			for _, r := range rateLevels {
				cells = append(cells, runOpts{workload: wl, mode: "open", rate: r})
			}
		}
	}
	for i := range cells {
		cells[i].duration = *duration
		cells[i].maxJobs = *maxJobs
		cells[i].jobTimeout = jobTimeout.String()
		cells[i].baseSeed = *seed
		cells[i].awaitGrace = *jobTimeout + 30*time.Second
	}

	for _, cell := range cells {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "repairbench: interrupted; reporting completed cells only")
			break
		}
		rep, err := runOne(ctx, c, cell)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repairbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "repairbench: "+rep.line())
		report.Runs = append(report.Runs, rep)
	}
	if len(report.Runs) == 0 {
		fmt.Fprintln(os.Stderr, "repairbench: no cells completed")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "repairbench: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "repairbench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "repairbench: wrote %s (%d runs)\n", *out, len(report.Runs))
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
