package main

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestHarnessClosedLoopInProcess runs a miniature sweep cell against an
// in-process daemon: the full submit → backoff → await → sample path,
// asserting the report invariants the BENCH_SERVE schema validator
// enforces (completions, latency decomposition, zero hot-spins).
func TestHarnessClosedLoopInProcess(t *testing.T) {
	url, stop, err := startDaemon(daemonOpts{
		workers:    2,
		queueDepth: 8,
		retryAfter: 500 * time.Millisecond, // sub-second: exercises the rounding fix
		logf:       func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("startDaemon: %v", err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("daemon stop: %v", err)
		}
	}()

	c := &client{
		base:            url,
		hc:              &http.Client{Timeout: 10 * time.Second},
		poll:            time.Millisecond,
		fallbackBackoff: 50 * time.Millisecond,
	}
	var cheap workload
	for _, w := range workloads {
		if w.name == "cheap" {
			cheap = w
		}
	}
	rep, err := runOne(context.Background(), c, runOpts{
		workload:    cheap,
		mode:        "closed",
		concurrency: 2,
		duration:    400 * time.Millisecond,
		maxJobs:     6,
		jobTimeout:  "30s",
		baseSeed:    7,
		awaitGrace:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("runOne: %v", err)
	}

	if rep.Completed == 0 || rep.Repaired == 0 {
		t.Fatalf("no completions: %+v", rep)
	}
	if rep.Completed > 6 {
		t.Fatalf("maxJobs cap ignored: %d completed", rep.Completed)
	}
	if rep.HotSpins != 0 {
		t.Fatalf("hot-spins against a fixed server: %d", rep.HotSpins)
	}
	if rep.JobsPerSec <= 0 || rep.RepairsPerSec <= 0 {
		t.Fatalf("throughput not computed: %+v", rep)
	}
	for _, key := range []string{"queueWait", "exec", "e2e"} {
		s, ok := rep.LatencyMs[key]
		if !ok || s.N != rep.Completed {
			t.Fatalf("latencyMs[%s] = %+v, want n=%d", key, s, rep.Completed)
		}
		if s.P50 < 0 || s.P95 < s.P50 || s.P99 < s.P95 || s.Max < s.P99 {
			t.Fatalf("latencyMs[%s] percentiles not monotone: %+v", key, s)
		}
	}
	// The in-process daemon serves /debug/metrics, so the server-side
	// cross-check must be present and count the same completions.
	ss, ok := rep.ServerLatencyMs["exec"]
	if !ok {
		t.Fatalf("serverLatencyMs missing: %+v", rep.ServerLatencyMs)
	}
	if ss.N != rep.Completed {
		t.Fatalf("server histogram saw %d jobs, client saw %d", ss.N, rep.Completed)
	}
	// e2e >= exec >= 0 in aggregate: the decomposition is ordered.
	if rep.LatencyMs["e2e"].P50 < rep.LatencyMs["exec"].P50 {
		t.Fatalf("e2e p50 %v < exec p50 %v", rep.LatencyMs["e2e"].P50, rep.LatencyMs["exec"].P50)
	}
}

// TestHarnessBackpressureAccounting saturates a deliberately tiny daemon
// (one worker, depth-1 queue) and asserts rejected submits are accounted
// as backpressure — waited-out retries, not failures or hot-spins.
func TestHarnessBackpressureAccounting(t *testing.T) {
	url, stop, err := startDaemon(daemonOpts{
		workers:    1,
		queueDepth: 1,
		retryAfter: time.Second,
		logf:       func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("startDaemon: %v", err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("daemon stop: %v", err)
		}
	}()

	c := &client{
		base:            url,
		hc:              &http.Client{Timeout: 10 * time.Second},
		poll:            time.Millisecond,
		fallbackBackoff: 50 * time.Millisecond,
	}
	var heavy workload
	for _, w := range workloads {
		if w.name == "heavy" {
			heavy = w
		}
	}
	rep, err := runOne(context.Background(), c, runOpts{
		workload:    heavy,
		mode:        "closed",
		concurrency: 6,
		duration:    700 * time.Millisecond,
		jobTimeout:  "30s",
		baseSeed:    3,
		awaitGrace:  60 * time.Second,
	})
	if err != nil {
		t.Fatalf("runOne: %v", err)
	}
	if rep.Rejected429 == 0 {
		t.Fatalf("six closed-loop workers against a depth-1 queue produced no 429s: %+v", rep)
	}
	if rep.Retries < rep.Rejected429 {
		t.Fatalf("retries %d < rejections %d: rejected submits were dropped, not retried",
			rep.Retries, rep.Rejected429)
	}
	if rep.HotSpins != 0 {
		t.Fatalf("%d hot-spins: some 429 carried no usable Retry-After", rep.HotSpins)
	}
	// Each retry waited >= the server's whole-second Retry-After.
	if minWait := float64(rep.Retries) * 1000; rep.BackoffWaitMs < minWait {
		t.Fatalf("backoff wait %.0fms < %d retries x 1000ms", rep.BackoffWaitMs, rep.Retries)
	}
	if rep.Failed != 0 {
		t.Fatalf("rejected submits leaked into failures: %+v", rep)
	}
}
