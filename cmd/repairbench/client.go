package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// client drives one daemon over HTTP and keeps the sweep-wide
// backpressure ledger. All methods are safe for concurrent use; the
// counters are reset per run by the load generator taking deltas.
type client struct {
	base string
	hc   *http.Client
	poll time.Duration

	// fallbackBackoff is how long to wait after a 429/503 that carried no
	// usable Retry-After. Such responses are counted as hot-spins — the
	// harness refuses to actually spin, but it reports that the server
	// invited it to.
	fallbackBackoff time.Duration

	rejected429, rejected503 atomic.Int64
	retries, hotSpins        atomic.Int64
	backoffNs                atomic.Int64
}

// ledger is a point-in-time copy of the backpressure counters.
type ledger struct {
	rejected429, rejected503, retries, hotSpins int64
	backoffNs                                   int64
}

func (c *client) snapshotLedger() ledger {
	return ledger{
		rejected429: c.rejected429.Load(),
		rejected503: c.rejected503.Load(),
		retries:     c.retries.Load(),
		hotSpins:    c.hotSpins.Load(),
		backoffNs:   c.backoffNs.Load(),
	}
}

func (l ledger) sub(before ledger) ledger {
	return ledger{
		rejected429: l.rejected429 - before.rejected429,
		rejected503: l.rejected503 - before.rejected503,
		retries:     l.retries - before.retries,
		hotSpins:    l.hotSpins - before.hotSpins,
		backoffNs:   l.backoffNs - before.backoffNs,
	}
}

// submit POSTs the spec, backing off and retrying on 429/503 until the
// job is accepted or ctx ends. Every retry waits at least the server's
// Retry-After; a missing or non-positive hint is recorded as a hot-spin
// and replaced by the fallback interval.
func (c *client) submit(ctx context.Context, spec server.Spec) (server.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return server.Status{}, fmt.Errorf("marshal spec: %w", err)
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return server.Status{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return server.Status{}, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st server.Status
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return server.Status{}, fmt.Errorf("decode submit response: %w", err)
			}
			return st, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				c.rejected429.Add(1)
			} else {
				c.rejected503.Add(1)
			}
			wait, ok := retryAfter(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if !ok {
				c.hotSpins.Add(1)
				wait = c.fallbackBackoff
			}
			c.retries.Add(1)
			c.backoffNs.Add(int64(wait))
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return server.Status{}, ctx.Err()
			}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return server.Status{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		}
	}
}

// retryAfter parses the response's pacing hint (delta-seconds form).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs <= 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// await polls the job until it reaches a terminal state.
func (c *client) await(ctx context.Context, id string) (server.Status, error) {
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		st, err := c.status(ctx, id)
		if err != nil {
			return server.Status{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return server.Status{}, ctx.Err()
		}
	}
}

func (c *client) status(ctx context.Context, id string) (server.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.Status{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return server.Status{}, fmt.Errorf("status %s: HTTP %d: %s", id, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.Status{}, fmt.Errorf("decode status: %w", err)
	}
	return st, nil
}

// histSnapshot mirrors the registry's serialized histogram shape.
type histSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// metricsSnapshot is the subset of /debug/metrics the harness reads.
type metricsSnapshot struct {
	Histograms map[string]histSnapshot `json:"histograms"`
}

// metrics scrapes the daemon's registry snapshot; ok=false when the
// endpoint is unavailable (the harness then skips the server-side
// cross-check rather than failing the sweep).
func (c *client) metrics(ctx context.Context) (metricsSnapshot, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/debug/metrics", nil)
	if err != nil {
		return metricsSnapshot{}, false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return metricsSnapshot{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metricsSnapshot{}, false
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return metricsSnapshot{}, false
	}
	return snap, true
}
