package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// sample is one accepted job's observed outcome. Queue-wait and
// execution come from the daemon's own status timestamps (what the job
// experienced inside the service); e2e is the client's wall clock from
// first submit attempt to terminal status observed (what the caller
// experienced, including submit backoff and poll quantization).
type sample struct {
	state       server.State
	repaired    bool
	queueWaitMs float64
	execMs      float64
	e2eMs       float64
}

// runOpts configures one sweep cell.
type runOpts struct {
	workload    workload
	mode        string  // "closed" | "open"
	concurrency int     // closed loop: client workers
	rate        float64 // open loop: offered submits/sec
	duration    time.Duration
	maxJobs     int // 0 = duration-bound
	jobTimeout  string
	baseSeed    uint64
	// awaitGrace bounds how long after the submit window the harness
	// waits for in-flight jobs to reach a terminal state.
	awaitGrace time.Duration
}

// runOne executes one (workload, mode, level) cell against the daemon and
// reports it. The backpressure ledger and the server histograms are
// differenced across the cell, so sequential cells don't contaminate each
// other.
func runOne(ctx context.Context, c *client, o runOpts) (RunReport, error) {
	ledgerBefore := c.snapshotLedger()
	metricsBefore, haveMetrics := c.metrics(ctx)

	samples, submitted, window, err := drive(ctx, c, o)
	if err != nil {
		return RunReport{}, err
	}

	led := c.snapshotLedger().sub(ledgerBefore)
	rep := RunReport{
		Workload:      o.workload.name,
		Mode:          o.mode,
		DurationS:     round3(window.Seconds()),
		Submitted:     submitted,
		Rejected429:   led.rejected429,
		Rejected503:   led.rejected503,
		Retries:       led.retries,
		HotSpins:      led.hotSpins,
		BackoffWaitMs: round3(float64(led.backoffNs) / 1e6),
	}
	if o.mode == "open" {
		rep.OfferedRPS = o.rate
	} else {
		rep.Concurrency = o.concurrency
	}

	var qw, ex, e2e []float64
	for _, s := range samples {
		switch s.state {
		case server.StateDone:
			rep.Completed++
			if s.repaired {
				rep.Repaired++
			}
			qw = append(qw, s.queueWaitMs)
			ex = append(ex, s.execMs)
			e2e = append(e2e, s.e2eMs)
		case server.StateFailed:
			rep.Failed++
		case server.StateCancelled:
			rep.Cancelled++
		}
	}
	if window > 0 {
		rep.JobsPerSec = round3(float64(rep.Completed) / window.Seconds())
		rep.RepairsPerSec = round3(float64(rep.Repaired) / window.Seconds())
	}
	rep.LatencyMs = map[string]LatencySummary{
		"queueWait": summarize(qw),
		"exec":      summarize(ex),
		"e2e":       summarize(e2e),
	}

	if haveMetrics {
		if after, ok := c.metrics(ctx); ok {
			server := map[string]LatencySummary{}
			for key, hist := range map[string]string{
				"queueWait": "server.job.queue_wait_ms",
				"exec":      "server.job.latency_ms",
				"e2e":       "server.job.e2e_ms",
			} {
				if d := delta(metricsBefore.Histograms[hist], after.Histograms[hist]); d != nil {
					server[key] = d.summary()
				}
			}
			if len(server) > 0 {
				rep.ServerLatencyMs = server
			}
		}
	}
	return rep, nil
}

// drive runs the submit/await loops and collects samples. The returned
// window spans from the first submit to the last terminal observation —
// closed-loop throughput is honest about tail jobs, not just the submit
// phase.
func drive(ctx context.Context, c *client, o runOpts) ([]sample, int, time.Duration, error) {
	var (
		mu        sync.Mutex
		samples   []sample
		firstErr  error
		submitted atomic.Int64
		claimed   atomic.Int64
	)
	recordErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	deadline := start.Add(o.duration)
	subCtx, cancelSub := context.WithDeadline(ctx, deadline)
	defer cancelSub()
	awaitCtx, cancelAwait := context.WithDeadline(ctx, deadline.Add(o.awaitGrace))
	defer cancelAwait()

	oneJob := func(worker, n int) bool {
		if o.maxJobs > 0 && claimed.Add(1) > int64(o.maxJobs) {
			return false
		}
		spec := o.workload.spec(worker, n, o.baseSeed)
		spec.Timeout = o.jobTimeout
		t0 := time.Now()
		st, err := c.submit(subCtx, spec)
		if err != nil {
			// The submit window closing mid-backoff is the normal end of a
			// closed-loop worker; anything else is a real harness failure.
			if subCtx.Err() == nil {
				recordErr(err)
			}
			return false
		}
		submitted.Add(1)
		fin, err := c.await(awaitCtx, st.ID)
		if err != nil {
			if awaitCtx.Err() == nil {
				recordErr(err)
			}
			return false
		}
		s := sample{state: fin.State, e2eMs: float64(time.Since(t0)) / 1e6}
		if fin.Result != nil {
			s.repaired = fin.Result.Repaired
		}
		if q, st2, f := parseTimes(fin); !q.IsZero() && !st2.IsZero() && !f.IsZero() {
			s.queueWaitMs = float64(st2.Sub(q)) / 1e6
			s.execMs = float64(f.Sub(st2)) / 1e6
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
		return true
	}

	var wg sync.WaitGroup
	switch o.mode {
	case "closed":
		for w := 0; w < o.concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for n := 0; time.Now().Before(deadline); n++ {
					if !oneJob(w, n) {
						return
					}
				}
			}(w)
		}
	case "open":
		// Fixed arrival schedule: submits fire every 1/rate regardless of
		// completions, so queueing delay shows up in e2e instead of being
		// absorbed by client-side blocking (the open-system critique of
		// closed-loop benchmarks).
		interval := time.Duration(float64(time.Second) / o.rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		n := 0
	arrivals:
		for time.Now().Before(deadline) && (o.maxJobs == 0 || n < o.maxJobs) {
			select {
			case <-ticker.C:
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					oneJob(0, n)
				}(n)
				n++
			case <-ctx.Done():
				break arrivals
			}
		}
	default:
		return nil, 0, 0, fmt.Errorf("unknown mode %q", o.mode)
	}
	wg.Wait()
	window := time.Since(start)

	if firstErr != nil {
		return nil, 0, 0, fmt.Errorf("%s/%s: %w", o.workload.name, o.mode, firstErr)
	}
	return samples, int(submitted.Load()), window, nil
}

// parseTimes decodes the daemon's RFC3339Nano status timestamps.
func parseTimes(st server.Status) (queued, started, finished time.Time) {
	parse := func(s string) time.Time {
		if s == "" {
			return time.Time{}
		}
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return time.Time{}
		}
		return t
	}
	return parse(st.QueuedAt), parse(st.StartedAt), parse(st.FinishedAt)
}
