package main

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Report is the BENCH_SERVE.json document: one run entry per
// (workload, mode, level) cell of the sweep. The schema string is the
// contract `benchjson -validate-serve` checks; bump it when a field
// changes meaning.
type Report struct {
	Schema string `json:"schema"`
	// Target is "in-process" or the -addr the sweep was aimed at.
	Target string `json:"target"`
	// Daemon echoes the in-process daemon sizing (absent for remote
	// targets, whose sizing the harness cannot see).
	Daemon *DaemonInfo `json:"daemon,omitempty"`
	// GoMaxProcs pins the client-side parallelism the numbers were
	// measured under.
	GoMaxProcs int         `json:"goMaxProcs"`
	Runs       []RunReport `json:"runs"`
}

// DaemonInfo records the in-process daemon's knobs.
type DaemonInfo struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queueDepth"`
	RetryAfter string `json:"retryAfter"`
	Store      bool   `json:"store"`
}

// RunReport is one sweep cell.
type RunReport struct {
	Workload string `json:"workload"`
	// Mode is "closed" (fixed client concurrency, next submit waits for
	// the previous completion) or "open" (fixed offered arrival rate,
	// submits do not wait).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency,omitempty"`
	OfferedRPS  float64 `json:"offeredRps,omitempty"`
	DurationS   float64 `json:"durationS"`

	// Submitted counts accepted submissions; Completed/Failed/Cancelled
	// partition their terminal states; Repaired counts completed jobs
	// whose repair succeeded.
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Repaired  int `json:"repaired"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`

	// Honest backpressure accounting: rejected submits are *not* failures
	// and are never folded into the latency percentiles — they are the
	// admission policy working. HotSpins counts 429/503 responses whose
	// Retry-After was missing or non-positive (the client then waits a
	// fallback interval, but the server gave no pacing, which is the bug
	// this harness exists to catch). Every retry waits at least the
	// server's Retry-After; BackoffWaitMs is the total time spent doing so.
	Rejected429   int64   `json:"rejected429"`
	Rejected503   int64   `json:"rejected503"`
	Retries       int64   `json:"retries"`
	HotSpins      int64   `json:"hotSpins"`
	BackoffWaitMs float64 `json:"backoffWaitMs"`

	JobsPerSec    float64 `json:"jobsPerSec"`
	RepairsPerSec float64 `json:"repairsPerSec"`

	// LatencyMs holds client-observed summaries keyed "queueWait", "exec"
	// and "e2e": queue-wait and execution come from the daemon's own
	// status timestamps; e2e is wall clock from the first submit attempt
	// (including any backoff) to the terminal status being observed.
	LatencyMs map[string]LatencySummary `json:"latencyMs"`
	// ServerLatencyMs is the cross-check: the same three summaries
	// estimated from the daemon's /debug/metrics histogram deltas over
	// this run, via the interpolated obs.QuantileFromBuckets estimator.
	// Absent when the target exposes no metrics endpoint.
	ServerLatencyMs map[string]LatencySummary `json:"serverLatencyMs,omitempty"`
}

// LatencySummary is a percentile digest of one latency dimension.
type LatencySummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// summarize digests raw samples (exact nearest-rank percentiles — the
// client has every sample, unlike the daemon's bucketed view).
func summarize(samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	pick := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		return s[rank-1]
	}
	return LatencySummary{
		N:    len(s),
		Mean: round3(sum / float64(len(s))),
		P50:  round3(pick(0.50)),
		P95:  round3(pick(0.95)),
		P99:  round3(pick(0.99)),
		Max:  round3(s[len(s)-1]),
	}
}

// histDelta is the per-run slice of one server histogram: buckets after
// the run minus buckets before it.
type histDelta struct {
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// delta subtracts two snapshots of the same histogram, nil when the
// shapes differ (a daemon restart mid-sweep) or nothing was observed.
func delta(before, after histSnapshot) *histDelta {
	if len(before.Bounds) != len(after.Bounds) || len(before.Buckets) != len(after.Buckets) {
		// before may be the zero value (histogram not created yet).
		if len(before.Bounds) != 0 {
			return nil
		}
		before.Buckets = make([]int64, len(after.Buckets))
	}
	d := &histDelta{
		bounds: after.Bounds,
		counts: make([]int64, len(after.Buckets)),
		sum:    after.Sum - before.Sum,
		n:      after.Count - before.Count,
	}
	for i := range after.Buckets {
		d.counts[i] = after.Buckets[i] - before.Buckets[i]
		if d.counts[i] < 0 {
			return nil
		}
	}
	if d.n <= 0 {
		return nil
	}
	return d
}

// summary renders the delta through the same interpolated estimator the
// daemon itself would use, so harness and /debug/metrics agree by
// construction.
func (d *histDelta) summary() LatencySummary {
	q := func(p float64) float64 {
		return round3(obs.QuantileFromBuckets(d.bounds, d.counts, p))
	}
	return LatencySummary{
		N:    int(d.n),
		Mean: round3(d.sum / float64(d.n)),
		P50:  q(0.50),
		P95:  q(0.95),
		P99:  q(0.99),
		Max:  q(1),
	}
}

func round3(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Round(v*1000) / 1000
}

// line renders the one-line human summary of a run.
func (r RunReport) line() string {
	level := fmt.Sprintf("c=%d", r.Concurrency)
	if r.Mode == "open" {
		level = fmt.Sprintf("rate=%g/s", r.OfferedRPS)
	}
	e2e := r.LatencyMs["e2e"]
	qw := r.LatencyMs["queueWait"]
	return fmt.Sprintf(
		"%-6s %-6s %-9s %6.1f jobs/s %6.1f repairs/s  e2e p50/p95/p99 %.1f/%.1f/%.1fms  queue p95 %.1fms  rejected %d (hot-spin %d)",
		r.Workload, r.Mode, level, r.JobsPerSec, r.RepairsPerSec,
		e2e.P50, e2e.P95, e2e.P99, qw.P95, r.Rejected429+r.Rejected503, r.HotSpins)
}
