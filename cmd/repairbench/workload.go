package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/server"
)

// A workload is a deterministic job-spec generator: spec(worker, n)
// yields the n-th job of the given client worker. Generators derive each
// job's seed from (baseSeed, worker, n), so a sweep is reproducible while
// still exercising distinct repair trajectories.
type workload struct {
	name string
	desc string
	spec func(worker, n int, baseSeed uint64) server.Spec
}

// cheapSrc is a fast custom repair subject (the probe-dominated extreme):
// the defect statement `set acc = acc + 7` is only reachable for n >= 100,
// so the three positives pass and the single negative fails until a
// mutation deletes or neutralizes it. Pool build plus online repair is
// single-digit milliseconds.
const cheapSrc = `input n
input m
set acc = n + m
if n < 100 goto ok
set acc = acc + 7
label ok
print acc
halt
`

func cheapSuite() *server.SuiteSpec {
	return &server.SuiteSpec{
		Positive: []server.TestSpec{
			{Name: "small", Input: []int64{1, 2}, Want: []int64{3}},
			{Name: "mid", Input: []int64{5, 5}, Want: []int64{10}},
			{Name: "edge", Input: []int64{99, 0}, Want: []int64{99}},
		},
		Negative: []server.TestSpec{
			{Name: "big", Input: []int64{500, 1}, Want: []int64{501}},
		},
	}
}

// heavyScenario is the expensive-suite extreme: a registry scenario whose
// phase-1 precompute alone evaluates ~450 candidates against a 7-test
// suite over a 201-statement program (~100ms of real repair work per
// job at 4 probe workers).
const heavyScenario = "libtiff-2005-12-14"

// jobSeed spreads (worker, n) over distinct, collision-free seeds.
func jobSeed(worker, n int, base uint64) uint64 {
	s := base + uint64(worker)*1_000_003 + uint64(n)*7919
	if s == 0 {
		s = 1
	}
	return s
}

func cheapSpec(worker, n int, base uint64) server.Spec {
	return server.Spec{
		Program:    cheapSrc,
		Name:       "bench-cheap",
		Suite:      cheapSuite(),
		PoolTarget: 24,
		Workers:    2,
		MaxIter:    2000,
		Seed:       jobSeed(worker, n, base),
	}
}

func heavySpec(worker, n int, base uint64) server.Spec {
	return server.Spec{
		Scenario: heavyScenario,
		Workers:  4,
		MaxIter:  2000,
		Seed:     jobSeed(worker, n, base),
	}
}

// workloads is the profile registry. Each profile isolates one axis of
// service behaviour; sweeping two or more gives the mixed-workload view
// the paper-style tables need.
var workloads = []workload{
	{
		name: "cheap",
		desc: "custom-source submits, millisecond jobs (admission + queue overhead dominate)",
		spec: cheapSpec,
	},
	{
		name: "heavy",
		desc: heavyScenario + " registry jobs, ~100ms suite-heavy repairs (execution dominates)",
		spec: heavySpec,
	},
	{
		name: "mixed",
		desc: "50/50 cheap/heavy interleave (queueing interaction between short and long jobs)",
		spec: func(worker, n int, base uint64) server.Spec {
			if (worker+n)%2 == 0 {
				return cheapSpec(worker, n, base)
			}
			return heavySpec(worker, n, base)
		},
	},
	{
		name: "warm",
		desc: heavyScenario + " with a fixed seed: identical jobs warm-start from the daemon's -store (cold only on first contact)",
		spec: func(worker, n int, base uint64) server.Spec {
			s := heavySpec(0, 0, base)
			s.Seed = base // every job identical: maximal store/warm-start reuse
			return s
		},
	},
	{
		name: "faulty",
		desc: heavyScenario + " under 8% injected probe faults with managed policies (degradation curve)",
		spec: func(worker, n int, base uint64) server.Spec {
			s := heavySpec(worker, n, base)
			s.FaultRate = 0.08
			s.Managed = true
			return s
		},
	},
}

// workloadNames lists the registry for -h output.
func workloadNames() string {
	names := make([]string, 0, len(workloads))
	for _, w := range workloads {
		names = append(names, w.name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// selectWorkloads resolves a comma-separated -workloads value.
func selectWorkloads(list string) ([]workload, error) {
	var out []workload
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, w := range workloads {
			if w.name == name {
				out = append(out, w)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown workload %q (have: %s)", name, workloadNames())
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no workloads selected (have: %s)", workloadNames())
	}
	return out, nil
}
