package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// daemonOpts sizes the in-process daemon the harness starts when no
// -addr is given.
type daemonOpts struct {
	workers    int
	queueDepth int
	retryAfter time.Duration
	storeDir   string
	logf       func(format string, args ...any)
}

// startDaemon runs a real mwrepaird-equivalent stack — manager, handler,
// middleware, TCP listener — inside the harness process and drives it
// over loopback HTTP. In-process measurement keeps the sweep
// self-contained (CI needs no second process) while still exercising the
// full serving path, serialization included; only NIC and kernel
// network-stack effects are out of scope, and -addr covers those.
func startDaemon(o daemonOpts) (url string, stop func() error, err error) {
	var st *store.Store
	if o.storeDir != "" {
		if err := os.MkdirAll(o.storeDir, 0o755); err != nil {
			return "", nil, fmt.Errorf("-store: %w", err)
		}
		if st, err = store.Open(store.Options{Dir: o.storeDir}); err != nil {
			return "", nil, fmt.Errorf("-store: %w", err)
		}
	}

	mgr := server.NewManager(server.Config{
		Workers:      o.workers,
		QueueDepth:   o.queueDepth,
		RetryAfter:   o.retryAfter,
		DrainTimeout: 5 * time.Second,
		Store:        st,
		Logf:         o.logf,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return "", nil, fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: server.Handler(mgr)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stop = func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr := mgr.Shutdown(ctx)
		httpErr := srv.Shutdown(ctx)
		if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if st != nil {
			if err := st.Close(); err != nil {
				return err
			}
		}
		if drainErr != nil {
			return drainErr
		}
		return httpErr
	}
	return "http://" + ln.Addr().String(), stop, nil
}
